// Package serve is the resident serving layer of the team-formation
// daemon (cmd/tfsnd): an HTTP/JSON front end that owns one relation
// engine and one reusable Solver and runs team-formation queries with
// serving-grade request hygiene. It exists because the paper's
// workload is interactive — a task arrives, a team comes back — and
// the repository's engines are built for exactly that shape: plans are
// cached across requests, warm solves on packed engines allocate
// nothing, and the sharded engine bounds memory under any corpus size.
// What was missing is the request lifecycle around them.
//
// A request passes four stages:
//
//	admit → coalesce → solve → respond
//
// # Admission
//
// Admission is a bounded gate (a counting semaphore with a try-acquire,
// admission.go): at most Options.Queue requests are past the gate at
// once, and a request that finds the gate full is shed immediately with
// HTTP 429 and a Retry-After header — the daemon never queues
// unboundedly and never blocks an accept loop on a slow solve. A
// draining server rejects new work with 503 before the gate.
//
// # Deadlines
//
// Every admitted request runs under a context deadline: the server
// default (Options.Deadline) or the request's own deadline_ms, whichever
// is smaller. The deadline propagates into the solver, which checks it
// cooperatively (per seed, per batch task, per worker item) and aborts
// with team.ErrDeadlineExceeded — reported as HTTP 504 — leaving every
// scratch and cached plan reusable. A solver abort never poisons the
// next request.
//
// # Coalescing
//
// With Options.CoalesceWait > 0, concurrent /form requests that share
// solve options are gathered into windows (coalesce.go): the first
// request opens a window and arms a timer, companions join it, and the
// window fires as one Solver.FormBatchContext call when the timer
// expires — or earlier, once Options.CoalesceBatch requests have
// gathered. Batching amortises scratch and plan-cache traffic across
// the window. Each caller still honours its own deadline: a caller
// whose context expires answers 504 even if the batch later completes.
//
// # Mutations
//
// With Options.EnableMutations (tfsnd -mutations) and a mutable engine,
// POST /mutate?mut=op:u:v[:sign] applies one live edge mutation
// (add / remove / flip; the spec grammar is cliflags.ParseMutation,
// shared with tfsn's -mutate flag). Structural conflicts — adding an
// edge that exists, removing one that doesn't — answer 409 so clients
// can re-read and retry; malformed specs answer 400; GET answers 405.
// A successful mutation returns the new graph epoch and the number of
// shards it staled. Solves are isolated from concurrent mutations by
// snapshots: every direct solve (and every coalescing window) pins the
// engine's epoch for its duration, so a request sees one graph version
// end to end and a racing /mutate waits for the pin to release. On
// immutable engines the snapshot is a zero-value no-op and /mutate is
// not registered (404).
//
// # Drain
//
// Graceful shutdown is a three-step contract with the owner (tfsnd):
// BeginDrain stops admission (healthz flips to draining, new requests
// get 503) and flushes open coalescing windows; the owner then shuts
// down its http.Server, which waits for in-flight handlers; finally
// Wait blocks until background batch runners are done (or its context
// expires, which hard-cancels them) — only then is it safe to Close
// the engine, preserving the engine's Close-drains-prefetcher
// discipline one level up.
//
// # Observability
//
// /stats reports the server counters (admitted, shed, coalesced,
// deadline-exceeded, in-flight — all atomics, safe to scrape while
// solves are in flight), the solver's plan-cache counters, the sharded
// engine's live counters when that engine is serving, a lock-free
// fixed-bucket solve-latency histogram (histogram.go: power-of-two
// microsecond buckets with mean and conservative p50/p99 upper
// bounds, observed on every admitted solve with no allocation and no
// lock on the request path), the mutation counters (epoch, mutations
// applied, stale shards, rebuilds) when the engine is mutable, and
// optionally a startup relation scan. /healthz reports ready or
// draining.
package serve
