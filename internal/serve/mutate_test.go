// Serving-layer mutation tests: the /mutate endpoint contract (method,
// spec parsing, conflict mapping, gating), /stats mutation counters,
// and concurrent /mutate vs /form traffic — the CI race-workers job
// runs the concurrent test under the race detector.

package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/compat"
	"repro/internal/sgraph"
	"repro/internal/skills"
	"repro/internal/team"
)

// mustTask resolves skill names against the assignment's universe.
func mustTask(t testing.TB, a *skills.Assignment, names ...string) skills.Task {
	t.Helper()
	var ids []skills.SkillID
	for _, name := range names {
		id, ok := a.Universe().Lookup(name)
		if !ok {
			t.Fatalf("unknown skill %q", name)
		}
		ids = append(ids, id)
	}
	return skills.NewTask(ids...)
}

func sgNode(i int32) sgraph.NodeID { return sgraph.NodeID(i) }

// post performs one POST against the server's handler.
func post(t testing.TB, s *Server, path string) (*http.Response, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", path, nil))
	res := rec.Result()
	return res, rec.Body.Bytes()
}

func decodeMutate(t testing.TB, body []byte) mutateResult {
	t.Helper()
	var mr mutateResult
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatalf("bad mutate JSON %q: %v", body, err)
	}
	return mr
}

func TestMutateEndpoint(t *testing.T) {
	g, a := fixtureGraph(t)
	rel := compat.MustNewSharded(compat.NNE, g, compat.ShardedOptions{ShardRows: 2})
	defer rel.Close()
	s := New(rel, a, Options{PlanCache: 8, Engine: "sharded", EnableMutations: true})
	defer s.Wait(context.Background())

	// Method discipline: a GET must not mutate.
	res, _ := get(t, s, "/mutate?mut=flip:1:4")
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /mutate status %d, want 405", res.StatusCode)
	}
	// Bad specs are 400.
	for _, bad := range []string{"", "flip:1", "frob:1:2", "flip:1:2:+", "add:1:2:?"} {
		if res, body := post(t, s, "/mutate?mut="+bad); res.StatusCode != http.StatusBadRequest {
			t.Fatalf("mut=%q status %d (%s), want 400", bad, res.StatusCode, body)
		}
	}
	// Structure conflicts are 409: the edge set has no {0,3}.
	if res, body := post(t, s, "/mutate?mut=remove:0:3"); res.StatusCode != http.StatusConflict {
		t.Fatalf("removing a missing edge: status %d (%s), want 409", res.StatusCode, body)
	}
	// Failed mutations must not move the epoch.
	if e := rel.Epoch(); e != 0 {
		t.Fatalf("epoch %d after rejected mutations, want 0", e)
	}

	// A real mutation: flip the negative chord, answer the new epoch.
	res, body := post(t, s, "/mutate?mut=flip:1:4")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("flip status %d: %s", res.StatusCode, body)
	}
	mr := decodeMutate(t, body)
	if mr.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", mr.Epoch)
	}
	if mr.DirtyShards == 0 {
		t.Fatal("flipping the chord must dirty at least one shard")
	}

	// Post-mutation solves must match a fresh build of the mutated graph.
	res, body = get(t, s, "/form?task=A,B,C")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/form status %d: %s", res.StatusCode, body)
	}
	got := decodeTeam(t, body)
	fresh := compat.MustNew(compat.NNE, rel.Graph(), compat.Options{})
	want, err := team.Form(fresh, a, mustTask(t, a, "A", "B", "C"), team.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Found || got.Cost != want.Cost || len(got.Members) != len(want.Members) {
		t.Fatalf("post-mutation /form = %+v, fresh build wants cost %d members %v",
			got, want.Cost, want.Members)
	}

	// /stats surfaces the mutation counters and the latency histogram.
	res, body = get(t, s, "/stats")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/stats status %d", res.StatusCode)
	}
	var st statsPayload
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("bad stats JSON: %v", err)
	}
	if st.Mutation == nil || st.Mutation.Epoch != 1 || st.Mutation.Mutations != 1 {
		t.Fatalf("stats mutation section = %+v, want epoch 1 / 1 mutation", st.Mutation)
	}
	if st.Latency == nil || st.Latency.Count == 0 {
		t.Fatalf("stats latency section = %+v, want recorded solves", st.Latency)
	}
}

// TestMutateGating: /mutate is absent without EnableMutations, and
// absent even with it when the engine cannot mutate.
func TestMutateGating(t *testing.T) {
	g, a := fixtureGraph(t)
	s := New(matrixRel(t, g), a, Options{Engine: "matrix"})
	defer s.Wait(context.Background())
	if res, _ := post(t, s, "/mutate?mut=flip:1:4"); res.StatusCode != http.StatusNotFound {
		t.Fatalf("mutations disabled: status %d, want 404", res.StatusCode)
	}
	// An immutable wrapper with mutations requested: still absent.
	gate := make(chan struct{})
	close(gate)
	wrapped := &gatedRel{Relation: matrixRel(t, g), gate: gate, entered: make(chan struct{})}
	s2 := New(wrapped, a, Options{Engine: "matrix", EnableMutations: true})
	defer s2.Wait(context.Background())
	if res, _ := post(t, s2, "/mutate?mut=flip:1:4"); res.StatusCode != http.StatusNotFound {
		t.Fatalf("immutable engine: status %d, want 404", res.StatusCode)
	}
}

// TestConcurrentMutateAndFormHTTP races /mutate flips against /form
// and /stats traffic through a real httptest server. Every response
// must be well-formed, and the final epoch must equal the number of
// accepted mutations. Run under -race in CI.
func TestConcurrentMutateAndFormHTTP(t *testing.T) {
	g, a := fixtureGraph(t)
	rel := compat.MustNewSharded(compat.NNE, g, compat.ShardedOptions{ShardRows: 1})
	defer rel.Close()
	s := New(rel, a, Options{PlanCache: 8, Engine: "sharded", EnableMutations: true, Queue: 64})
	defer s.Wait(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const flips = 30
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < flips; i++ {
			res, err := http.Post(srv.URL+"/mutate?mut=flip:1:4", "", nil)
			if err != nil {
				errc <- err
				return
			}
			res.Body.Close()
			if res.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("mutate status %d", res.StatusCode)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			paths := []string{"/form?task=A,B,C", "/form?task=A,C", "/stats"}
			for i := 0; i < 40; i++ {
				res, err := http.Get(srv.URL + paths[(i+r)%len(paths)])
				if err != nil {
					errc <- err
					return
				}
				res.Body.Close()
				if res.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("read status %d on %s", res.StatusCode, paths[(i+r)%len(paths)])
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if e := rel.Epoch(); e != flips {
		t.Fatalf("final epoch = %d, want %d", e, flips)
	}
	// Flip count is even-odd: 30 flips returns the chord to negative,
	// so the engine must agree with the original fresh build.
	fresh := compat.MustNew(compat.NNE, g, compat.Options{})
	for u := int32(0); u < 5; u++ {
		for v := int32(0); v < 5; v++ {
			want, err1 := fresh.Compatible(sgNode(u), sgNode(v))
			got, err2 := rel.Compatible(sgNode(u), sgNode(v))
			if err1 != nil || err2 != nil || want != got {
				t.Fatalf("Compatible(%d,%d): fresh (%v,%v) engine (%v,%v)", u, v, want, err1, got, err2)
			}
		}
	}
}
