// The solve-latency histogram: fixed power-of-two microsecond buckets
// behind plain atomic counters, so recording on the hot serving path
// is one subtraction, one bit scan and one atomic add — no locks, no
// allocation, no contention beyond the cache line the bucket lives on.
// Fixed buckets mean the /stats scrape snapshots torn-free without
// stopping writers, at the cost of quantiles that are upper bounds
// rounded to the bucket boundary (a factor of two, which is what a
// latency scrape needs: orders of magnitude, not microseconds).

package serve

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the bucket count: bucket i holds observations with
// ceil(log2(us)) == i, i.e. (2^(i-1), 2^i] microseconds, with bucket 0
// taking everything ≤ 1µs and the last bucket open-ended. 21 buckets
// reach 2^20 µs ≈ 1.05 s before the overflow bucket, which brackets
// any solve the deadline machinery would let live.
const histBuckets = 21

// latencyHistogram is the live, atomically updated histogram. The zero
// value is ready to use.
type latencyHistogram struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64 // total microseconds, for the mean
}

// observe records one duration. Safe for any number of concurrent
// callers.
func (h *latencyHistogram) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	i := bits.Len64(uint64(us))
	if us > 0 && us == 1<<(i-1) {
		i-- // exact powers of two belong to their own bucket
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.counts[i].Add(1)
	h.sum.Add(us)
}

// LatencyBucket is one histogram bucket in a /stats snapshot: the
// inclusive upper bound in microseconds (0 on the open-ended last
// bucket) and the observation count.
type LatencyBucket struct {
	LEMicros int64 `json:"le_us,omitempty"`
	Count    int64 `json:"count"`
}

// LatencyStats is the JSON shape of a histogram snapshot. Quantiles
// are bucket upper bounds: conservative to within a factor of two.
type LatencyStats struct {
	Count     int64           `json:"count"`
	MeanUs    float64         `json:"mean_us"`
	P50Us     int64           `json:"p50_us"`
	P99Us     int64           `json:"p99_us"`
	MaxLEUs   int64           `json:"max_le_us"` // highest non-empty bucket bound
	Buckets   []LatencyBucket `json:"buckets,omitempty"`
	truncated bool            // test hook: snapshot saw the overflow bucket
}

// snapshot reads the histogram. Each bucket load is atomic;
// observations racing the scrape land in either this snapshot or the
// next, never in a torn state.
func (h *latencyHistogram) snapshot() LatencyStats {
	var st LatencyStats
	counts := make([]int64, histBuckets)
	for i := range counts {
		counts[i] = h.counts[i].Load()
		st.Count += counts[i]
	}
	sum := h.sum.Load()
	if st.Count == 0 {
		return st
	}
	st.MeanUs = float64(sum) / float64(st.Count)
	bound := func(i int) int64 {
		if i >= histBuckets-1 {
			return 0 // open-ended
		}
		return 1 << i
	}
	quantile := func(q float64) int64 {
		target := int64(q * float64(st.Count))
		var seen int64
		for i, c := range counts {
			seen += c
			if seen > target {
				return bound(i)
			}
		}
		return bound(histBuckets - 1)
	}
	st.P50Us = quantile(0.50)
	st.P99Us = quantile(0.99)
	for i := histBuckets - 1; i >= 0; i-- {
		if counts[i] != 0 {
			st.MaxLEUs = bound(i)
			st.truncated = i == histBuckets-1
			break
		}
	}
	st.Buckets = make([]LatencyBucket, 0, histBuckets)
	for i, c := range counts {
		if c != 0 {
			st.Buckets = append(st.Buckets, LatencyBucket{LEMicros: bound(i), Count: c})
		}
	}
	return st
}
