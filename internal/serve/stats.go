// The server's own counters. Like the engine counters (compat) and the
// plan-cache counters (team), these are atomics so a /stats scrape
// observes no torn values and contends with nothing while requests are
// in flight.

package serve

import "sync/atomic"

// ServerStats is a snapshot of the serving counters, shaped for JSON.
type ServerStats struct {
	// Admitted counts requests that passed the admission gate
	// (including ones that later failed or timed out).
	Admitted int64 `json:"admitted"`
	// Shed counts requests rejected with 429 because the gate was full.
	Shed int64 `json:"shed"`
	// Coalesced counts requests served through a multi-request batch
	// window (a window of one is a plain solve and counts nothing).
	Coalesced int64 `json:"coalesced"`
	// DeadlineExceeded counts requests answered 504: the solve aborted
	// on its deadline, or the caller's deadline fired while its batch
	// window was still solving.
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	// Infeasible counts solves answered "found: false" because the
	// request's constraints were contradictory (team.ErrInfeasible) —
	// most of them served from cached negative plan entries.
	Infeasible int64 `json:"infeasible"`
	// InFlight is the live gauge of admitted-but-unfinished requests.
	InFlight int64 `json:"in_flight"`
}

// counters is the live, atomically updated form of ServerStats.
type counters struct {
	admitted         atomic.Int64
	shed             atomic.Int64
	coalesced        atomic.Int64
	deadlineExceeded atomic.Int64
	infeasible       atomic.Int64
	inFlight         atomic.Int64
}

// snapshot reads the counters; each load is atomic, and the gauge is
// loaded last so it refers to the freshest moment of the scrape.
func (c *counters) snapshot() ServerStats {
	return ServerStats{
		Admitted:         c.admitted.Load(),
		Shed:             c.shed.Load(),
		Coalesced:        c.coalesced.Load(),
		DeadlineExceeded: c.deadlineExceeded.Load(),
		Infeasible:       c.infeasible.Load(),
		InFlight:         c.inFlight.Load(),
	}
}
