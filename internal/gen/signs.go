package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sgraph"
)

// RandomCamps splits n nodes into two factions, assigning each node to
// faction 0 with probability fracA.
func RandomCamps(rng *rand.Rand, n int, fracA float64) []uint8 {
	camps := make([]uint8, n)
	for i := range camps {
		if rng.Float64() >= fracA {
			camps[i] = 1
		}
	}
	return camps
}

// CampsForNegFraction splits n nodes into two factions sized so that
// the expected fraction of inter-faction edges (under camp-independent
// edge placement) equals negFrac: a faction split p gives 2p(1−p)
// inter-faction edges, so p = (1 − √(1−2f))/2. Using this with
// FactionSigns keeps the sign calibration's corrective flips — and
// therefore the frustration it introduces — near the noise level,
// preserving the mostly-balanced regime of real signed networks.
// negFrac must be in [0, 0.5].
func CampsForNegFraction(rng *rand.Rand, n int, negFrac float64) ([]uint8, error) {
	if negFrac < 0 || negFrac > 0.5 {
		return nil, fmt.Errorf("gen: negFrac = %g out of [0, 0.5] (two factions cannot exceed 50%% inter-faction edges in expectation)", negFrac)
	}
	p := (1 - math.Sqrt(1-2*negFrac)) / 2
	return RandomCamps(rng, n, p), nil
}

// UniformSigns labels every topology edge negative independently with
// probability negFrac. The result has no particular balance structure
// (real networks do; prefer FactionSigns for realistic stand-ins).
func UniformSigns(rng *rand.Rand, t *Topology, negFrac float64) []sgraph.Edge {
	edges := make([]sgraph.Edge, len(t.Edges))
	for i, e := range t.Edges {
		s := sgraph.Positive
		if rng.Float64() < negFrac {
			s = sgraph.Negative
		}
		edges[i] = sgraph.Edge{U: e[0], V: e[1], Sign: s}
	}
	return edges
}

// FactionSigns labels edges by the two-faction balance model and then
// calibrates the global negative fraction:
//
//  1. intra-faction edges start positive, inter-faction negative
//     (a perfectly balanced signing);
//  2. a noise fraction of edges flips sign, introducing the
//     frustration real networks exhibit;
//  3. random edges flip further until exactly
//     round(negFrac·|E|) edges are negative, so dataset stand-ins hit
//     the paper's published negative-edge percentages.
//
// The result is "mostly balanced plus noise", the regime in which the
// paper's SBP ≈ NNE observation holds.
func FactionSigns(rng *rand.Rand, t *Topology, camps []uint8, negFrac, noise float64) ([]sgraph.Edge, error) {
	if len(camps) != t.N {
		return nil, fmt.Errorf("gen: %d camps for %d nodes", len(camps), t.N)
	}
	if negFrac < 0 || negFrac > 1 {
		return nil, fmt.Errorf("gen: negFrac = %g out of [0,1]", negFrac)
	}
	if noise < 0 || noise > 1 {
		return nil, fmt.Errorf("gen: noise = %g out of [0,1]", noise)
	}
	edges := make([]sgraph.Edge, len(t.Edges))
	negCount := 0
	for i, e := range t.Edges {
		s := sgraph.Positive
		if camps[e[0]] != camps[e[1]] {
			s = sgraph.Negative
		}
		if rng.Float64() < noise {
			s = -s
		}
		if s == sgraph.Negative {
			negCount++
		}
		edges[i] = sgraph.Edge{U: e[0], V: e[1], Sign: s}
	}

	target := int(float64(len(edges))*negFrac + 0.5)
	// Flip random edges of the over-represented sign until the count
	// matches. Permute indices once for an unbiased pick.
	perm := rng.Perm(len(edges))
	for _, i := range perm {
		if negCount == target {
			break
		}
		e := &edges[i]
		if negCount < target && e.Sign == sgraph.Positive {
			e.Sign = sgraph.Negative
			negCount++
		} else if negCount > target && e.Sign == sgraph.Negative {
			e.Sign = sgraph.Positive
			negCount--
		}
	}
	if negCount != target {
		return nil, fmt.Errorf("gen: cannot reach %d negative edges on %d edges", target, len(edges))
	}
	return edges, nil
}

// Build assembles signed edges into a graph on n nodes.
func Build(n int, edges []sgraph.Edge) (*sgraph.Graph, error) {
	return sgraph.FromEdges(n, edges)
}
