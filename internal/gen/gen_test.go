package gen

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/balance"
	"repro/internal/sgraph"
)

func TestErdosRenyiCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	topo, err := ErdosRenyi(rng, 50, 120)
	if err != nil {
		t.Fatalf("ErdosRenyi: %v", err)
	}
	if topo.N != 50 || len(topo.Edges) != 120 {
		t.Fatalf("got n=%d m=%d", topo.N, len(topo.Edges))
	}
	seen := map[[2]sgraph.NodeID]bool{}
	for _, e := range topo.Edges {
		if e[0] >= e[1] {
			t.Fatalf("non-canonical edge %v", e)
		}
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
	}
}

func TestErdosRenyiTooManyEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := ErdosRenyi(rng, 4, 7); err == nil {
		t.Fatal("accepted m > n(n-1)/2")
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	t1, err := ErdosRenyi(rand.New(rand.NewSource(9)), 30, 60)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := ErdosRenyi(rand.New(rand.NewSource(9)), 30, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Edges) != len(t2.Edges) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range t1.Edges {
		if t1.Edges[i] != t2.Edges[i] {
			t.Fatal("nondeterministic edges")
		}
	}
}

func TestChungLuHeavyTail(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	topo, err := ChungLu(rng, 400, 2400, 2.5)
	if err != nil {
		t.Fatalf("ChungLu: %v", err)
	}
	if len(topo.Edges) != 2400 {
		t.Fatalf("m = %d, want 2400", len(topo.Edges))
	}
	deg := make([]int, 400)
	for _, e := range topo.Edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(deg)))
	// Heavy tail: the top 5% of nodes should hold a disproportionate
	// share of the degree mass, far beyond the uniform share.
	top := 0
	for _, d := range deg[:20] {
		top += d
	}
	if frac := float64(top) / float64(2*2400); frac < 0.15 {
		t.Fatalf("top-5%% degree share = %.3f, want ≥ 0.15 (heavy tail)", frac)
	}
	// And low-weight nodes must still exist (not a star).
	if deg[len(deg)-1] > deg[0] {
		t.Fatal("degree sequence not sorted?")
	}
}

func TestChungLuParamValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := ChungLu(rng, 10, 5, 1.0); err == nil {
		t.Fatal("gamma 1.0 accepted")
	}
	if _, err := ChungLu(rng, 4, 100, 2.5); err == nil {
		t.Fatal("m too large accepted")
	}
}

func TestWattsStrogatzShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	topo, err := WattsStrogatz(rng, 100, 4, 0.1)
	if err != nil {
		t.Fatalf("WattsStrogatz: %v", err)
	}
	if topo.N != 100 {
		t.Fatalf("n = %d", topo.N)
	}
	// Expected ≈ n·k/2 edges (rewiring may drop a few on collisions).
	if len(topo.Edges) < 180 || len(topo.Edges) > 200 {
		t.Fatalf("m = %d, want ≈200", len(topo.Edges))
	}
	if _, err := WattsStrogatz(rng, 10, 3, 0.1); err == nil {
		t.Fatal("odd k accepted")
	}
	if _, err := WattsStrogatz(rng, 4, 4, 0.1); err == nil {
		t.Fatal("k >= n accepted")
	}
}

func TestConnectMakesConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		topo, err := ErdosRenyi(rng, 60, 40) // sparse: almost surely disconnected
		if err != nil {
			t.Fatal(err)
		}
		bridges := topo.Connect(rng)
		edges := UniformSigns(rng, topo, 0.2)
		g, err := Build(topo.N, edges)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsConnected() {
			t.Fatalf("trial %d: graph disconnected after Connect (%d bridges)", trial, len(bridges))
		}
	}
}

func TestConnectNoOpOnConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	topo, err := WattsStrogatz(rng, 50, 4, 0) // ring lattice: connected
	if err != nil {
		t.Fatal(err)
	}
	before := len(topo.Edges)
	bridges := topo.Connect(rng)
	if len(bridges) != 0 || len(topo.Edges) != before {
		t.Fatalf("Connect modified a connected topology (%d bridges)", len(bridges))
	}
}

func TestUniformSignsFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	topo, err := ErdosRenyi(rng, 200, 2000)
	if err != nil {
		t.Fatal(err)
	}
	edges := UniformSigns(rng, topo, 0.3)
	neg := 0
	for _, e := range edges {
		if e.Sign == sgraph.Negative {
			neg++
		}
	}
	frac := float64(neg) / float64(len(edges))
	if math.Abs(frac-0.3) > 0.05 {
		t.Fatalf("negative fraction = %.3f, want ≈0.30", frac)
	}
}

func TestFactionSignsExactFractionAndMostlyBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	topo, err := ChungLu(rng, 300, 1800, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	camps := RandomCamps(rng, 300, 0.5)
	edges, err := FactionSigns(rng, topo, camps, 0.2, 0.02)
	if err != nil {
		t.Fatalf("FactionSigns: %v", err)
	}
	neg := 0
	for _, e := range edges {
		if e.Sign == sgraph.Negative {
			neg++
		}
	}
	want := int(float64(len(edges))*0.2 + 0.5)
	if neg != want {
		t.Fatalf("negative edges = %d, want exactly %d", neg, want)
	}
	// Mostly balanced: frustration well below the negative edge count.
	g, err := Build(topo.N, edges)
	if err != nil {
		t.Fatal(err)
	}
	if f := balance.Frustration(g); f > len(edges)/5 {
		t.Fatalf("frustration = %d on %d edges; sign model not mostly balanced", f, len(edges))
	}
}

func TestFactionSignsZeroNoiseZeroTargetMatchesCamps(t *testing.T) {
	// With noise 0 and negFrac equal to the natural inter-faction
	// fraction, signs follow camps exactly and the graph is balanced.
	rng := rand.New(rand.NewSource(10))
	topo, err := ErdosRenyi(rng, 80, 300)
	if err != nil {
		t.Fatal(err)
	}
	camps := RandomCamps(rng, 80, 0.5)
	inter := 0
	for _, e := range topo.Edges {
		if camps[e[0]] != camps[e[1]] {
			inter++
		}
	}
	edges, err := FactionSigns(rng, topo, camps, float64(inter)/float64(len(topo.Edges)), 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(topo.N, edges)
	if err != nil {
		t.Fatal(err)
	}
	if !balance.IsBalanced(g) {
		t.Fatal("pure faction signing must be balanced")
	}
}

func TestCampsForNegFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, f := range []float64{0.167, 0.215, 0.292} {
		topo, err := ChungLu(rng, 600, 4000, 2.5)
		if err != nil {
			t.Fatal(err)
		}
		camps, err := CampsForNegFraction(rng, 600, f)
		if err != nil {
			t.Fatalf("CampsForNegFraction(%g): %v", f, err)
		}
		// The natural inter-faction fraction should already be close
		// to the target, so calibration flips few edges...
		inter := 0
		for _, e := range topo.Edges {
			if camps[e[0]] != camps[e[1]] {
				inter++
			}
		}
		interFrac := float64(inter) / float64(len(topo.Edges))
		if math.Abs(interFrac-f) > 0.06 {
			t.Fatalf("f=%g: natural inter-faction fraction %.3f too far from target", f, interFrac)
		}
		// ...and the signed graph stays mostly balanced: frustration
		// stays near the noise level, far below the negative count.
		edges, err := FactionSigns(rng, topo, camps, f, 0.03)
		if err != nil {
			t.Fatal(err)
		}
		g, err := Build(topo.N, edges)
		if err != nil {
			t.Fatal(err)
		}
		if fr := balance.Frustration(g); fr > len(edges)/8 {
			t.Fatalf("f=%g: frustration %d of %d edges — not mostly balanced", f, fr, len(edges))
		}
	}
	if _, err := CampsForNegFraction(rng, 10, 0.6); err == nil {
		t.Fatal("negFrac > 0.5 accepted")
	}
	if _, err := CampsForNegFraction(rng, 10, -0.1); err == nil {
		t.Fatal("negative negFrac accepted")
	}
}

func TestFactionSignsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	topo, _ := ErdosRenyi(rng, 10, 20)
	camps := RandomCamps(rng, 10, 0.5)
	if _, err := FactionSigns(rng, topo, camps[:5], 0.2, 0); err == nil {
		t.Fatal("short camps accepted")
	}
	if _, err := FactionSigns(rng, topo, camps, 1.5, 0); err == nil {
		t.Fatal("negFrac > 1 accepted")
	}
	if _, err := FactionSigns(rng, topo, camps, 0.2, -1); err == nil {
		t.Fatal("negative noise accepted")
	}
}
