// Package gen synthesises signed networks with controlled topology and
// sign structure. The paper evaluates on three real signed networks
// (Slashdot, Epinions, Wikipedia); this repository has no network
// access, so gen provides calibrated stand-ins: topologies with the
// right scale/degree shape, and a sign model — mostly-balanced
// two-faction signs plus noise — reproducing the weak structural
// balance observed in real signed social networks (Leskovec et al.,
// CHI 2010). internal/datasets composes these into the named datasets.
//
// Topology and signs are generated separately: a Topology is a plain
// edge skeleton, and the sign assigners decorate it. Everything is
// driven by an explicit *rand.Rand so runs are reproducible.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/container"
	"repro/internal/sgraph"
)

// Topology is an unsigned edge skeleton on n nodes.
type Topology struct {
	N     int
	Edges [][2]sgraph.NodeID // distinct, canonical U < V
}

// edgeSet tracks which canonical edges exist during generation.
type edgeSet map[[2]sgraph.NodeID]struct{}

func (s edgeSet) add(u, v sgraph.NodeID) bool {
	if u == v {
		return false
	}
	if u > v {
		u, v = v, u
	}
	key := [2]sgraph.NodeID{u, v}
	if _, dup := s[key]; dup {
		return false
	}
	s[key] = struct{}{}
	return true
}

func (s edgeSet) topology(n int) *Topology {
	t := &Topology{N: n, Edges: make([][2]sgraph.NodeID, 0, len(s))}
	for key := range s {
		t.Edges = append(t.Edges, key)
	}
	// Deterministic order for reproducibility across map iteration.
	sort.Slice(t.Edges, func(i, j int) bool {
		if t.Edges[i][0] != t.Edges[j][0] {
			return t.Edges[i][0] < t.Edges[j][0]
		}
		return t.Edges[i][1] < t.Edges[j][1]
	})
	return t
}

// ErdosRenyi samples a G(n, m) topology: m distinct edges uniformly at
// random.
func ErdosRenyi(rng *rand.Rand, n, m int) (*Topology, error) {
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		return nil, fmt.Errorf("gen: %d edges exceed the %d possible on %d nodes", m, maxEdges, n)
	}
	set := make(edgeSet, m)
	for len(set) < m {
		u, v := sgraph.NodeID(rng.Intn(n)), sgraph.NodeID(rng.Intn(n))
		set.add(u, v)
	}
	return set.topology(n), nil
}

// ChungLu samples a topology with a power-law expected degree
// sequence: node i gets weight (i+i0)^(−1/(γ−1)), and m distinct
// edges are drawn with endpoint probability proportional to weight.
// γ (gamma) around 2.2–2.8 matches social networks; the paper's
// datasets are heavy-tailed.
func ChungLu(rng *rand.Rand, n, m int, gamma float64) (*Topology, error) {
	if gamma <= 1 {
		return nil, fmt.Errorf("gen: gamma = %g, want > 1", gamma)
	}
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		return nil, fmt.Errorf("gen: %d edges exceed the %d possible on %d nodes", m, maxEdges, n)
	}
	// Cumulative weights for O(log n) sampling.
	cum := make([]float64, n+1)
	alpha := 1 / (gamma - 1)
	for i := 0; i < n; i++ {
		cum[i+1] = cum[i] + math.Pow(float64(i+1), -alpha)
	}
	sample := func() sgraph.NodeID {
		x := rng.Float64() * cum[n]
		return sgraph.NodeID(sort.SearchFloat64s(cum[1:], x))
	}
	set := make(edgeSet, m)
	attempts := 0
	maxAttempts := 200*m + 1000
	for len(set) < m {
		attempts++
		if attempts > maxAttempts {
			return nil, fmt.Errorf("gen: ChungLu stalled after %d attempts at %d/%d edges (weights too skewed)", attempts, len(set), m)
		}
		set.add(sample(), sample())
	}
	return set.topology(n), nil
}

// WattsStrogatz samples a small-world topology: a ring lattice where
// every node links to its k nearest neighbours (k even), with each
// edge rewired to a random target with probability beta.
func WattsStrogatz(rng *rand.Rand, n, k int, beta float64) (*Topology, error) {
	if k < 2 || k%2 != 0 || k >= n {
		return nil, fmt.Errorf("gen: WattsStrogatz needs even k in [2, n); got k=%d n=%d", k, n)
	}
	set := make(edgeSet, n*k/2)
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := (u + j) % n
			if rng.Float64() < beta {
				// Rewire: keep u, pick a fresh target.
				for tries := 0; tries < 32; tries++ {
					w := sgraph.NodeID(rng.Intn(n))
					if set.add(sgraph.NodeID(u), w) {
						break
					}
				}
			} else {
				set.add(sgraph.NodeID(u), sgraph.NodeID(v))
			}
		}
	}
	return set.topology(n), nil
}

// Connect adds the minimum number of bridge edges so that the
// topology is connected: each non-giant component gets one edge to a
// random node of the giant. Bridges are returned so sign assigners can
// label them (conventionally positive).
func (t *Topology) Connect(rng *rand.Rand) [][2]sgraph.NodeID {
	uf := container.NewUnionFind(t.N)
	for _, e := range t.Edges {
		uf.Union(e[0], e[1])
	}
	if t.N == 0 {
		return nil
	}
	// Find the giant component's representatives.
	sizes := make(map[int32]int)
	for v := 0; v < t.N; v++ {
		sizes[uf.Find(sgraph.NodeID(v))]++
	}
	giant := int32(0)
	best := -1
	for root, size := range sizes {
		if size > best || (size == best && root < giant) {
			giant, best = root, size
		}
	}
	var members []sgraph.NodeID
	for v := 0; v < t.N; v++ {
		if uf.Find(sgraph.NodeID(v)) == giant {
			members = append(members, sgraph.NodeID(v))
		}
	}
	var bridges [][2]sgraph.NodeID
	for v := 0; v < t.N; v++ {
		if uf.Connected(sgraph.NodeID(v), members[0]) {
			continue
		}
		anchor := members[rng.Intn(len(members))]
		u, w := sgraph.NodeID(v), anchor
		if u > w {
			u, w = w, u
		}
		bridges = append(bridges, [2]sgraph.NodeID{u, w})
		t.Edges = append(t.Edges, [2]sgraph.NodeID{u, w})
		uf.Union(u, w)
	}
	return bridges
}
