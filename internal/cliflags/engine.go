// The relation-engine flag group. Engine bundles the -engine knob and
// its sharded-only satellites into one registerable, validatable,
// buildable unit, so cmd/tfsn and cmd/tfsnd select relation backends
// through identical flags, identical rejection rules and an identical
// construction path (including the exact-SBP-stays-lazy override).

package cliflags

import (
	"flag"
	"fmt"

	"repro/internal/compat"
	"repro/internal/sgraph"
)

// Engine is the relation-engine flag group shared by the serving
// binaries: which backend to build and the sharded engine's knobs.
// Register it on a FlagSet, Validate it after parsing, then Build the
// relation.
type Engine struct {
	// Name is the backend: "lazy" (cached rows, on demand), "matrix"
	// (packed all-pairs precompute) or "sharded" (packed rows in
	// spillable shards).
	Name string
	// ShardRows, MaxResidentShards, Prefetch and MmapSpill mirror
	// compat.ShardedOptions; they mean nothing unless Name is
	// "sharded" (Validate rejects them otherwise).
	ShardRows         int
	MaxResidentShards int
	Prefetch          bool
	MmapSpill         bool
}

// Register defines the engine flags on fs. The names are the shared
// vocabulary (ShardedOnly); defaults match the historical tfsn flags.
func (e *Engine) Register(fs *flag.FlagSet) {
	fs.StringVar(&e.Name, "engine", "lazy", "relation engine: lazy (cached rows, on demand), matrix (packed all-pairs precompute) or sharded (packed rows in spillable shards)")
	fs.IntVar(&e.ShardRows, "shard-rows", 0, "sharded engine: rows per shard (0 = default)")
	fs.IntVar(&e.MaxResidentShards, "max-resident-shards", 0, "sharded engine: shards kept in memory, rest spilled to disk (0 = all resident)")
	fs.BoolVar(&e.Prefetch, "prefetch", false, "sharded engine: async-prefetch the next shard during sequential sweeps")
	fs.BoolVar(&e.MmapSpill, "mmap-spill", true, "sharded engine: serve spill reloads from a read-only mmap of the spill file (false = portable read-back)")
}

// Validate rejects inconsistent engine flags: an unknown engine name,
// or sharded-only flags under another engine. set holds the names of
// flags explicitly present on the command line (collect with
// FlagSet.Visit).
func (e *Engine) Validate(set map[string]bool) error {
	switch e.Name {
	case "", "lazy", "matrix", "sharded":
	default:
		return fmt.Errorf("unknown engine %q (want lazy, matrix or sharded)", e.Name)
	}
	return ValidateEngine(e.Name, set)
}

// Build constructs the selected engine over g. Exact SBP stays on the
// lazy engine regardless of the selection: its per-source enumeration
// is budgeted and exponential, so an all-pairs packed build would
// abort where lazy point queries succeed. The returned name is the
// engine actually built ("lazy" under that override), for reporting.
func (e *Engine) Build(kind compat.Kind, g *sgraph.Graph, opts compat.Options) (compat.Relation, string, error) {
	switch e.Name {
	case "", "lazy":
		rel, err := compat.New(kind, g, opts)
		return rel, "lazy", err
	case "matrix", "sharded":
		if kind == compat.SBP {
			rel, err := compat.New(kind, g, opts)
			return rel, "lazy", err
		}
		if e.Name == "sharded" {
			m, err := compat.NewSharded(kind, g, compat.ShardedOptions{
				Options:           opts,
				ShardRows:         e.ShardRows,
				MaxResidentShards: e.MaxResidentShards,
				Prefetch:          e.Prefetch,
				DisableMmap:       !e.MmapSpill,
			})
			if err != nil {
				return nil, "", err
			}
			return m, "sharded", nil
		}
		m, err := compat.NewMatrix(kind, g, compat.MatrixOptions{Options: opts})
		if err != nil {
			return nil, "", err
		}
		return m, "matrix", nil
	default:
		return nil, "", fmt.Errorf("unknown engine %q (want lazy, matrix or sharded)", e.Name)
	}
}
