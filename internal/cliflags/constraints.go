// The constrained-formation vocabulary shared by the binaries and the
// serving layer: one grammar for must-include / must-exclude user
// lists and the team-size cap, whether the values arrive as tfsn
// flags (-include/-exclude/-max-team) or as tfsnd query parameters
// (include/exclude/maxteam). Parsing here is purely syntactic — ids
// are non-negative decimals, the cap is non-negative; semantic
// validation (range against the loaded dataset, contradiction
// detection) is team.Constraints.Validate's job, so a spelling that
// parses on the command line parses identically in a curl request.

package cliflags

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sgraph"
	"repro/internal/team"
)

// ConstraintSpec is the raw, unparsed constraint vocabulary: two
// comma-separated user-id lists and a size cap. The zero value means
// unconstrained.
type ConstraintSpec struct {
	Include string // comma-separated user ids the team must contain
	Exclude string // comma-separated user ids the team must not contain
	MaxTeam int    // team-size cap; 0 = unbounded
}

// Register installs the spec's flags (-include, -exclude, -max-team)
// on fs.
func (c *ConstraintSpec) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Include, "include", "", "comma-separated user ids the team must contain")
	fs.StringVar(&c.Exclude, "exclude", "", "comma-separated user ids the team must not contain")
	fs.IntVar(&c.MaxTeam, "max-team", 0, "cap the team size (0 = unbounded)")
}

// IsZero reports the unconstrained zero value.
func (c ConstraintSpec) IsZero() bool {
	return c.Include == "" && c.Exclude == "" && c.MaxTeam == 0
}

// ParseUserList parses a comma-separated list of non-negative decimal
// user ids ("3,1,17"); empty or all-whitespace input is an empty list.
// Order and duplicates are preserved (team.Constraints canonicalises).
func ParseUserList(spec string) ([]sgraph.NodeID, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ",")
	ids := make([]sgraph.NodeID, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		v, err := strconv.ParseInt(p, 10, 32)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad user id %q in %q (want a non-negative decimal)", p, spec)
		}
		ids = append(ids, sgraph.NodeID(v))
	}
	return ids, nil
}

// Parse converts the raw spec into team.Constraints, rejecting
// syntactic garbage (unparseable ids, a negative cap). It does not
// check ids against a dataset or detect contradictions — pass the
// result through team.Constraints.Validate for that.
func (c ConstraintSpec) Parse() (team.Constraints, error) {
	var cons team.Constraints
	var err error
	if cons.MustInclude, err = ParseUserList(c.Include); err != nil {
		return team.Constraints{}, fmt.Errorf("include: %w", err)
	}
	if cons.MustExclude, err = ParseUserList(c.Exclude); err != nil {
		return team.Constraints{}, fmt.Errorf("exclude: %w", err)
	}
	if c.MaxTeam < 0 {
		return team.Constraints{}, fmt.Errorf("max-team must be >= 0, got %d", c.MaxTeam)
	}
	cons.MaxTeamSize = c.MaxTeam
	return cons, nil
}
