// The serving flag group. Serve bundles tfsnd's request-lifecycle
// knobs — the default per-request deadline, the admission bound, the
// coalescing window and the drain grace period — with the conflict
// validation both binaries apply before running (exit-2 discipline in
// the mains). cmd/tfsn registers only the deadline (one-shot runs have
// no queue to bound or drain), via RegisterDeadline.

package cliflags

import (
	"errors"
	"flag"
	"fmt"
	"time"
)

// Serve is the request-lifecycle flag group of the serving daemon.
type Serve struct {
	// Deadline is the default per-request time budget; 0 means no
	// deadline. Requests may lower (never raise) it per call.
	Deadline time.Duration
	// Queue bounds admitted-but-unfinished requests; beyond it the
	// daemon sheds with 429 instead of queueing unboundedly.
	Queue int
	// CoalesceWait is how long a single-task request waits for
	// companions before solving; 0 disables coalescing.
	CoalesceWait time.Duration
	// CoalesceBatch closes a coalescing window early once this many
	// requests have gathered; 0 means no count trigger.
	CoalesceBatch int
	// DrainTimeout bounds graceful shutdown: how long in-flight
	// requests get to finish after SIGTERM before being canceled.
	DrainTimeout time.Duration
}

// RegisterDeadline defines only the -deadline flag on fs — the subset
// that makes sense for one-shot runs (tfsn).
func (s *Serve) RegisterDeadline(fs *flag.FlagSet) {
	fs.DurationVar(&s.Deadline, "deadline", 0, "per-solve time budget, e.g. 250ms (0 = none)")
}

// Register defines the full serving flag group on fs (tfsnd).
func (s *Serve) Register(fs *flag.FlagSet) {
	s.RegisterDeadline(fs)
	fs.IntVar(&s.Queue, "queue", 64, "admission bound: max admitted-but-unfinished requests before shedding with 429")
	fs.DurationVar(&s.CoalesceWait, "coalesce-wait", 0, "hold single-task requests this long to batch them with companions (0 = no coalescing)")
	fs.IntVar(&s.CoalesceBatch, "coalesce-batch", 0, "close a coalescing window early at this many requests (0 = wait the full window)")
	fs.DurationVar(&s.DrainTimeout, "drain-timeout", 10*time.Second, "graceful-shutdown grace period for in-flight requests")
}

// ValidateDeadline checks only the -deadline knob — the validation
// matching RegisterDeadline's subset (tfsn).
func (s *Serve) ValidateDeadline() error {
	if s.Deadline < 0 {
		return fmt.Errorf("-deadline must be ≥ 0, got %v", s.Deadline)
	}
	return nil
}

// Validate rejects contradictory serving flags — the full group, as
// registered by Register (tfsnd).
func (s *Serve) Validate() error {
	if err := s.ValidateDeadline(); err != nil {
		return err
	}
	if s.Queue < 1 {
		return fmt.Errorf("-queue must be ≥ 1, got %d", s.Queue)
	}
	if s.CoalesceWait < 0 {
		return fmt.Errorf("-coalesce-wait must be ≥ 0, got %v", s.CoalesceWait)
	}
	if s.CoalesceBatch < 0 {
		return fmt.Errorf("-coalesce-batch must be ≥ 0, got %d", s.CoalesceBatch)
	}
	if s.CoalesceBatch > 0 && s.CoalesceWait <= 0 {
		return errors.New("-coalesce-batch needs -coalesce-wait > 0 (the count trigger closes a time window early; without a window there is nothing to close)")
	}
	if s.DrainTimeout < 0 {
		return fmt.Errorf("-drain-timeout must be ≥ 0, got %v", s.DrainTimeout)
	}
	return nil
}
