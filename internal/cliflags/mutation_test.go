package cliflags

import (
	"testing"

	"repro/internal/sgraph"
)

func TestParseMutation(t *testing.T) {
	cases := []struct {
		spec string
		want sgraph.Mutation
	}{
		{"add:1:2", sgraph.Mutation{Op: sgraph.MutAdd, U: 1, V: 2, Sign: sgraph.Positive}},
		{"add:1:2:+", sgraph.Mutation{Op: sgraph.MutAdd, U: 1, V: 2, Sign: sgraph.Positive}},
		{"add:1:2:-", sgraph.Mutation{Op: sgraph.MutAdd, U: 1, V: 2, Sign: sgraph.Negative}},
		{"add:1:2:neg", sgraph.Mutation{Op: sgraph.MutAdd, U: 1, V: 2, Sign: sgraph.Negative}},
		{"remove:3:4", sgraph.Mutation{Op: sgraph.MutRemove, U: 3, V: 4}},
		{"rm:3:4", sgraph.Mutation{Op: sgraph.MutRemove, U: 3, V: 4}},
		{"FLIP:0:9", sgraph.Mutation{Op: sgraph.MutFlip, U: 0, V: 9}},
	}
	for _, c := range cases {
		got, err := ParseMutation(c.spec)
		if err != nil {
			t.Fatalf("ParseMutation(%q): %v", c.spec, err)
		}
		if got != c.want {
			t.Fatalf("ParseMutation(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
	bad := []string{
		"", "flip", "flip:1", "frob:1:2", "flip:x:2", "flip:1:y",
		"flip:-1:2", "flip:1:2:+", "remove:1:2:-", "add:1:2:?", "add:1:2:+:extra",
	}
	for _, spec := range bad {
		if _, err := ParseMutation(spec); err == nil {
			t.Fatalf("ParseMutation(%q) accepted a bad spec", spec)
		}
	}
}

func TestParseMutations(t *testing.T) {
	muts, err := ParseMutations("flip:1:2, add:3:4:-,remove:5:6")
	if err != nil {
		t.Fatal(err)
	}
	want := []sgraph.Mutation{
		{Op: sgraph.MutFlip, U: 1, V: 2},
		{Op: sgraph.MutAdd, U: 3, V: 4, Sign: sgraph.Negative},
		{Op: sgraph.MutRemove, U: 5, V: 6},
	}
	if len(muts) != len(want) {
		t.Fatalf("got %d mutations, want %d", len(muts), len(want))
	}
	for i := range want {
		if muts[i] != want[i] {
			t.Fatalf("mutation %d = %+v, want %+v", i, muts[i], want[i])
		}
	}
	if muts, err := ParseMutations(""); err != nil || muts != nil {
		t.Fatalf("empty spec: (%v, %v), want empty list", muts, err)
	}
	if _, err := ParseMutations("flip:1:2,bogus"); err == nil {
		t.Fatal("a bad element must fail the whole list")
	}
}
