package cliflags

import "testing"

func TestValidateEngine(t *testing.T) {
	for _, name := range ShardedOnly {
		if err := ValidateEngine("sharded", map[string]bool{name: true}); err != nil {
			t.Errorf("-%s under -engine=sharded must pass, got %v", name, err)
		}
		for _, engine := range []string{"lazy", "matrix", ""} {
			if err := ValidateEngine(engine, map[string]bool{name: true}); err == nil {
				t.Errorf("-%s under -engine=%q must be rejected", name, engine)
			}
		}
	}
	if err := ValidateEngine("lazy", map[string]bool{"seed": true}); err != nil {
		t.Errorf("engine-agnostic flags must pass under any engine, got %v", err)
	}
	if err := ValidateEngine("lazy", nil); err != nil {
		t.Errorf("no flags set must pass, got %v", err)
	}
}
