package cliflags

import (
	"flag"
	"testing"
	"time"

	"repro/internal/compat"
	"repro/internal/sgraph"
	"repro/internal/team"
)

func TestValidateEngine(t *testing.T) {
	for _, name := range ShardedOnly {
		if err := ValidateEngine("sharded", map[string]bool{name: true}); err != nil {
			t.Errorf("-%s under -engine=sharded must pass, got %v", name, err)
		}
		for _, engine := range []string{"lazy", "matrix", ""} {
			if err := ValidateEngine(engine, map[string]bool{name: true}); err == nil {
				t.Errorf("-%s under -engine=%q must be rejected", name, engine)
			}
		}
	}
	if err := ValidateEngine("lazy", map[string]bool{"seed": true}); err != nil {
		t.Errorf("engine-agnostic flags must pass under any engine, got %v", err)
	}
	if err := ValidateEngine("lazy", nil); err != nil {
		t.Errorf("no flags set must pass, got %v", err)
	}
}

// parse runs a throwaway FlagSet over args and returns the explicitly
// set flag names, mirroring what the binaries collect with Visit.
func parseSet(t *testing.T, reg func(*flag.FlagSet), args ...string) map[string]bool {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	reg(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

func TestEngineValidate(t *testing.T) {
	var e Engine
	set := parseSet(t, e.Register, "-engine=lazy", "-shard-rows=8")
	if err := e.Validate(set); err == nil {
		t.Fatal("sharded-only flag under -engine=lazy not rejected")
	}
	e = Engine{}
	set = parseSet(t, e.Register, "-engine=sharded", "-shard-rows=8", "-prefetch")
	if err := e.Validate(set); err != nil {
		t.Fatalf("valid sharded flags rejected: %v", err)
	}
	e = Engine{}
	set = parseSet(t, e.Register, "-engine=quantum")
	if err := e.Validate(set); err == nil {
		t.Fatal("unknown engine name not rejected")
	}
}

// TestEngineBuild: each engine name builds the advertised backend, and
// exact SBP falls back to lazy regardless of the selection.
func TestEngineBuild(t *testing.T) {
	g := sgraph.MustFromEdges(4, []sgraph.Edge{
		{U: 0, V: 1, Sign: 1}, {U: 1, V: 2, Sign: 1}, {U: 2, V: 3, Sign: -1},
	})
	for _, tc := range []struct {
		engine, want string
		kind         compat.Kind
	}{
		{"lazy", "lazy", compat.SPO},
		{"", "lazy", compat.SPO},
		{"matrix", "matrix", compat.SPO},
		{"sharded", "sharded", compat.SPO},
		{"matrix", "lazy", compat.SBP}, // exact SBP stays lazy
		{"sharded", "lazy", compat.SBP},
	} {
		e := Engine{Name: tc.engine, MmapSpill: true}
		rel, got, err := e.Build(tc.kind, g, compat.Options{})
		if err != nil {
			t.Fatalf("Build(%s, %v): %v", tc.engine, tc.kind, err)
		}
		if got != tc.want {
			t.Fatalf("Build(%s, %v) built %q, want %q", tc.engine, tc.kind, got, tc.want)
		}
		if c, ok := rel.(interface{ Close() error }); ok {
			c.Close()
		}
	}
	if _, _, err := (&Engine{Name: "quantum"}).Build(compat.SPO, g, compat.Options{}); err == nil {
		t.Fatal("Build with unknown engine did not fail")
	}
}

func TestServeValidate(t *testing.T) {
	good := Serve{Deadline: time.Second, Queue: 4, CoalesceWait: time.Millisecond, CoalesceBatch: 8, DrainTimeout: time.Second}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid serve flags rejected: %v", err)
	}
	for name, bad := range map[string]Serve{
		"negative deadline":      {Deadline: -time.Second, Queue: 4},
		"zero queue":             {Queue: 0},
		"batch without wait":     {Queue: 4, CoalesceBatch: 8},
		"negative wait":          {Queue: 4, CoalesceWait: -time.Millisecond},
		"negative batch":         {Queue: 4, CoalesceBatch: -1},
		"negative drain timeout": {Queue: 4, DrainTimeout: -time.Second},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s not rejected", name)
		}
	}
}

// TestServeRegisterDefaults: the daemon defaults are themselves valid.
func TestServeRegisterDefaults(t *testing.T) {
	var s Serve
	parseSet(t, s.Register)
	if err := s.Validate(); err != nil {
		t.Fatalf("default serve flags invalid: %v", err)
	}
	var one Serve
	set := parseSet(t, one.RegisterDeadline, "-deadline=250ms")
	if !set["deadline"] || one.Deadline != 250*time.Millisecond {
		t.Fatalf("RegisterDeadline parse: set=%v deadline=%v", set, one.Deadline)
	}
}

func TestPolicyParsers(t *testing.T) {
	for spell, want := range map[string]team.SkillPolicy{
		"rarest": team.RarestFirst, "leastcompatible": team.LeastCompatibleFirst,
		"LC": team.LeastCompatibleFirst, "": team.LeastCompatibleFirst,
	} {
		got, err := ParseSkillPolicy(spell)
		if err != nil || got != want {
			t.Errorf("ParseSkillPolicy(%q) = %v, %v; want %v", spell, got, err, want)
		}
	}
	for spell, want := range map[string]team.UserPolicy{
		"mindistance": team.MinDistance, "MD": team.MinDistance, "": team.MinDistance,
		"mostcompatible": team.MostCompatible, "mc": team.MostCompatible,
		"random": team.RandomUser,
	} {
		got, err := ParseUserPolicy(spell)
		if err != nil || got != want {
			t.Errorf("ParseUserPolicy(%q) = %v, %v; want %v", spell, got, err, want)
		}
	}
	for spell, want := range map[string]team.CostKind{
		"diameter": team.Diameter, "": team.Diameter,
		"sumdistance": team.SumDistance, "SUM": team.SumDistance,
	} {
		got, err := ParseCost(spell)
		if err != nil || got != want {
			t.Errorf("ParseCost(%q) = %v, %v; want %v", spell, got, err, want)
		}
	}
	if _, err := ParseSkillPolicy("x"); err == nil {
		t.Error("bad skill policy accepted")
	}
	if _, err := ParseUserPolicy("x"); err == nil {
		t.Error("bad user policy accepted")
	}
	if _, err := ParseCost("x"); err == nil {
		t.Error("bad cost accepted")
	}
}
