// Mutation-spec parsing shared by the binaries and the serving layer:
// one spelling for graph mutations, whether it arrives as a -mutate
// flag value (tfsn, tfsnd) or in a /mutate request. A spec that works
// in a curl request works verbatim on a command line.

package cliflags

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sgraph"
)

// ParseMutation parses one mutation spec:
//
//	add:U:V[:SIGN]   add edge {U,V}; SIGN is "+" (default) or "-"
//	remove:U:V       remove edge {U,V}
//	flip:U:V         flip the sign of edge {U,V}
//
// Node IDs are decimal. The spec deliberately carries no epoch — the
// engine assigns one on application.
func ParseMutation(spec string) (sgraph.Mutation, error) {
	var mut sgraph.Mutation
	parts := strings.Split(spec, ":")
	if len(parts) < 3 {
		return mut, fmt.Errorf("bad mutation %q (want op:u:v[:sign])", spec)
	}
	switch strings.ToLower(parts[0]) {
	case "add":
		mut.Op = sgraph.MutAdd
		mut.Sign = sgraph.Positive
	case "remove", "rm":
		mut.Op = sgraph.MutRemove
	case "flip":
		mut.Op = sgraph.MutFlip
	default:
		return mut, fmt.Errorf("unknown mutation op %q (want add, remove or flip)", parts[0])
	}
	u, err := strconv.ParseInt(parts[1], 10, 32)
	if err != nil || u < 0 {
		return mut, fmt.Errorf("bad mutation node %q in %q", parts[1], spec)
	}
	v, err := strconv.ParseInt(parts[2], 10, 32)
	if err != nil || v < 0 {
		return mut, fmt.Errorf("bad mutation node %q in %q", parts[2], spec)
	}
	mut.U, mut.V = sgraph.NodeID(u), sgraph.NodeID(v)
	if len(parts) == 4 {
		if mut.Op != sgraph.MutAdd {
			return mut, fmt.Errorf("mutation %q: only add takes a sign", spec)
		}
		switch parts[3] {
		case "+", "pos":
			mut.Sign = sgraph.Positive
		case "-", "neg":
			mut.Sign = sgraph.Negative
		default:
			return mut, fmt.Errorf("bad mutation sign %q in %q (want + or -)", parts[3], spec)
		}
	} else if len(parts) > 4 {
		return mut, fmt.Errorf("bad mutation %q (want op:u:v[:sign])", spec)
	}
	return mut, nil
}

// ParseMutations parses a comma-separated mutation list — the -mutate
// flag shape ("flip:1:2,add:3:4:-"). An empty spec is an empty list.
func ParseMutations(spec string) ([]sgraph.Mutation, error) {
	if spec == "" {
		return nil, nil
	}
	var muts []sgraph.Mutation
	for _, one := range strings.Split(spec, ",") {
		mut, err := ParseMutation(strings.TrimSpace(one))
		if err != nil {
			return nil, err
		}
		muts = append(muts, mut)
	}
	return muts, nil
}
