// Policy-name parsing shared by the binaries and the serving layer:
// one spelling table for skill policies, user policies and cost
// objectives, whether the string arrives on a command line (tfsn,
// experiments) or in a request body (tfsnd). Parsers accept the same
// spellings everywhere, so a policy that works in a curl request works
// verbatim as a flag value.

package cliflags

import (
	"fmt"
	"strings"

	"repro/internal/team"
)

// ParseSkillPolicy maps a skill-policy spelling ("rarest",
// "leastcompatible"/"lc") to the team constant.
func ParseSkillPolicy(s string) (team.SkillPolicy, error) {
	switch strings.ToLower(s) {
	case "", "leastcompatible", "lc":
		return team.LeastCompatibleFirst, nil
	case "rarest":
		return team.RarestFirst, nil
	default:
		return 0, fmt.Errorf("unknown skill policy %q (want rarest or leastcompatible)", s)
	}
}

// ParseUserPolicy maps a user-policy spelling ("mindistance"/"md",
// "mostcompatible"/"mc", "random") to the team constant. Callers that
// accept RandomUser must attach Options.Rng themselves; serving
// callers typically reject it instead (it is uncacheable and
// non-deterministic).
func ParseUserPolicy(s string) (team.UserPolicy, error) {
	switch strings.ToLower(s) {
	case "", "mindistance", "md":
		return team.MinDistance, nil
	case "mostcompatible", "mc":
		return team.MostCompatible, nil
	case "random":
		return team.RandomUser, nil
	default:
		return 0, fmt.Errorf("unknown user policy %q (want mindistance, mostcompatible or random)", s)
	}
}

// ParseCost maps a cost-objective spelling ("diameter",
// "sumdistance"/"sum") to the team constant.
func ParseCost(s string) (team.CostKind, error) {
	switch strings.ToLower(s) {
	case "", "diameter":
		return team.Diameter, nil
	case "sumdistance", "sum":
		return team.SumDistance, nil
	default:
		return 0, fmt.Errorf("unknown cost %q (want diameter or sumdistance)", s)
	}
}
