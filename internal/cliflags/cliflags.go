// Package cliflags holds the flag vocabulary the serving and
// experiment binaries share, so a knob added to one cannot silently
// drift out of the other's validation: both cmd/tfsn and
// cmd/experiments define the sharded-engine flags by these names and
// reject them under any other engine through the same check.
package cliflags

import "fmt"

// ShardedOnly lists the flag names that configure the sharded
// relation engine and mean nothing under -engine=lazy|matrix.
var ShardedOnly = []string{"shard-rows", "max-resident-shards", "prefetch", "mmap-spill"}

// ValidateEngine rejects sharded-only flags passed with another
// engine. set holds the names of flags explicitly present on the
// command line (collect with flag.Visit).
func ValidateEngine(engine string, set map[string]bool) error {
	if engine == "sharded" {
		return nil
	}
	for _, name := range ShardedOnly {
		if set[name] {
			return fmt.Errorf("-%s only applies to -engine=sharded (got -engine=%s)", name, engine)
		}
	}
	return nil
}
