package cliflags

import (
	"errors"
	"flag"
	"strings"
	"sync"
	"testing"

	"repro/internal/compat"
	"repro/internal/sgraph"
	"repro/internal/skills"
	"repro/internal/team"
)

func TestParseUserList(t *testing.T) {
	cases := []struct {
		in   string
		want []sgraph.NodeID
		ok   bool
	}{
		{"", nil, true},
		{"   ", nil, true},
		{"3", []sgraph.NodeID{3}, true},
		{"3,1,17", []sgraph.NodeID{3, 1, 17}, true},
		{" 3 , 1 ", []sgraph.NodeID{3, 1}, true},
		{"7,7", []sgraph.NodeID{7, 7}, true}, // duplicates preserved; Constraints canonicalises
		{"00,012", []sgraph.NodeID{0, 12}, true},
		{"3,", nil, false},
		{"-1", nil, false},
		{"a", nil, false},
		{"3;4", nil, false},
		{"99999999999999999999", nil, false},
	}
	for _, c := range cases {
		got, err := ParseUserList(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseUserList(%q): err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("ParseUserList(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParseUserList(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

func TestConstraintSpecParse(t *testing.T) {
	spec := ConstraintSpec{Include: "3,1", Exclude: "9", MaxTeam: 5}
	cons, err := spec.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if len(cons.MustInclude) != 2 || len(cons.MustExclude) != 1 || cons.MaxTeamSize != 5 {
		t.Fatalf("parsed %+v", cons)
	}
	if _, err := (ConstraintSpec{Include: "x"}).Parse(); err == nil || !strings.HasPrefix(err.Error(), "include:") {
		t.Fatalf("bad include: %v, want include: prefix", err)
	}
	if _, err := (ConstraintSpec{Exclude: "-2"}).Parse(); err == nil || !strings.HasPrefix(err.Error(), "exclude:") {
		t.Fatalf("bad exclude: %v, want exclude: prefix", err)
	}
	if _, err := (ConstraintSpec{MaxTeam: -1}).Parse(); err == nil {
		t.Fatal("negative max-team accepted")
	}
	if !(ConstraintSpec{}).IsZero() || (ConstraintSpec{MaxTeam: 1}).IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestConstraintSpecRegister(t *testing.T) {
	var spec ConstraintSpec
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	spec.Register(fs)
	if err := fs.Parse([]string{"-include", "1,2", "-exclude", "3", "-max-team", "4"}); err != nil {
		t.Fatal(err)
	}
	if spec.Include != "1,2" || spec.Exclude != "3" || spec.MaxTeam != 4 {
		t.Fatalf("registered flags parsed %+v", spec)
	}
}

// fuzzInstance is a tiny shared solve fixture for the fuzz target: an
// all-positive 8-clique where everyone holds skill 0 and the first
// four users hold skill 1, so most well-formed constraint sets admit a
// team and the solve branch of the fuzz invariants runs often.
var fuzzInstance struct {
	once   sync.Once
	rel    compat.Relation
	assign *skills.Assignment
	task   skills.Task
}

func fuzzSolveFixture() (compat.Relation, *skills.Assignment, skills.Task) {
	fuzzInstance.once.Do(func() {
		const n = 8
		var edges []sgraph.Edge
		for u := int32(0); u < n; u++ {
			for v := u + 1; v < n; v++ {
				edges = append(edges, sgraph.Edge{U: sgraph.NodeID(u), V: sgraph.NodeID(v), Sign: sgraph.Positive})
			}
		}
		g := sgraph.MustFromEdges(n, edges)
		a := skills.NewAssignment(skills.GenerateUniverse(2), n)
		for u := int32(0); u < n; u++ {
			a.MustAdd(sgraph.NodeID(u), 0)
			if u < 4 {
				a.MustAdd(sgraph.NodeID(u), 1)
			}
		}
		fuzzInstance.rel = compat.MustNewMatrix(compat.NNE, g, compat.MatrixOptions{})
		fuzzInstance.assign = a
		fuzzInstance.task = skills.NewTask(0, 1)
	})
	return fuzzInstance.rel, fuzzInstance.assign, fuzzInstance.task
}

// FuzzConstraintSpec drives arbitrary flag-shaped input through the
// whole constraint pipeline — ParseUserList grammar, Constraints
// canonicalisation, Validate's error classification, and (when the
// constraints are well-formed for the tiny fixture) an actual solve —
// asserting the invariants every layer of the stack relies on: no
// panics, no negative ids past Parse, overlap always classified
// ErrInfeasible, fingerprints deterministic, and returned teams
// honouring their constraints. Wired into the CI fuzz-smoke job.
func FuzzConstraintSpec(f *testing.F) {
	f.Add("1,2,3", "4,5", 4)
	f.Add("", "", 0)
	f.Add(" 7 , 7 ", "7", 1)
	f.Add("0", "0", -1)
	f.Add("00,1", "2", 2)
	f.Add("3,1,2", "", 1) // cap below the include count
	f.Add("4,5,6,7", "0,1,2,3", 0)
	f.Fuzz(func(t *testing.T, include, exclude string, maxTeam int) {
		spec := ConstraintSpec{Include: include, Exclude: exclude, MaxTeam: maxTeam}
		cons, err := spec.Parse()
		if err != nil {
			if spec.IsZero() {
				t.Fatalf("zero spec rejected: %v", err)
			}
			return
		}
		if maxTeam < 0 {
			t.Fatalf("negative max-team %d accepted", maxTeam)
		}
		for _, u := range cons.MustInclude {
			if u < 0 {
				t.Fatalf("negative include %d survived Parse(%q)", u, include)
			}
		}
		for _, u := range cons.MustExclude {
			if u < 0 {
				t.Fatalf("negative exclude %d survived Parse(%q)", u, exclude)
			}
		}
		if fp1, fp2 := cons.Fingerprint(), cons.Fingerprint(); fp1 != fp2 {
			t.Fatalf("fingerprint unstable: %q vs %q", fp1, fp2)
		}
		// Validate must classify, never panic: any error without a
		// universe is either infeasibility or impossible here (ids are
		// non-negative, the cap is non-negative, ranges are skipped).
		verr := cons.Validate(0)
		in := map[sgraph.NodeID]bool{}
		for _, u := range cons.MustInclude {
			in[u] = true
		}
		overlap := false
		for _, u := range cons.MustExclude {
			if in[u] {
				overlap = true
				break
			}
		}
		if overlap && !errors.Is(verr, team.ErrInfeasible) {
			t.Fatalf("include∩exclude overlap validated as %v, want ErrInfeasible", verr)
		}
		if verr != nil && !errors.Is(verr, team.ErrInfeasible) {
			t.Fatalf("well-formed spec validated as a non-infeasibility error: %v", verr)
		}

		// When the constraints fit the tiny fixture, solve for real: the
		// solver must never panic, and a returned team must satisfy the
		// constraints to the letter.
		rel, assign, task := fuzzSolveFixture()
		if cons.Validate(assign.NumUsers()) != nil {
			return
		}
		tm, err := team.Form(rel, assign, task, team.Options{Constraints: cons})
		if err != nil {
			if !errors.Is(err, team.ErrNoTeam) {
				t.Fatalf("solve failed hard: %v", err)
			}
			return
		}
		members := map[sgraph.NodeID]bool{}
		for _, u := range tm.Members {
			members[u] = true
		}
		for _, u := range cons.MustInclude {
			if !members[u] {
				t.Fatalf("required member %d missing from %v", u, tm.Members)
			}
		}
		for _, u := range cons.MustExclude {
			if members[u] {
				t.Fatalf("excluded member %d present in %v", u, tm.Members)
			}
		}
		if cons.MaxTeamSize > 0 && len(tm.Members) > cons.MaxTeamSize {
			t.Fatalf("%d members exceed cap %d", len(tm.Members), cons.MaxTeamSize)
		}
	})
}
