package texttable

import (
	"strings"
	"testing"
)

func TestStringAlignment(t *testing.T) {
	tbl := New("name", "value").
		AddRow("a", "1").
		AddRow("longer", "22")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "------") {
		t.Fatalf("separator line = %q", lines[1])
	}
	// Columns aligned: "value" column starts at the same offset.
	off0 := strings.Index(lines[0], "value")
	off3 := strings.Index(lines[3], "22")
	if off0 != off3 {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestTitleAndNumRows(t *testing.T) {
	tbl := New("x").SetTitle("Table 1").AddRow("1").AddRow("2")
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
	if !strings.HasPrefix(tbl.String(), "Table 1\n") {
		t.Fatalf("missing title:\n%s", tbl.String())
	}
}

func TestShortAndLongRows(t *testing.T) {
	tbl := New("a", "b").AddRow("only")
	if !strings.Contains(tbl.String(), "only") {
		t.Fatal("short row lost")
	}
	tbl2 := New("a").AddRow("1", "2")
	if !strings.Contains(tbl2.String(), "!!") {
		t.Fatal("oversized row not flagged")
	}
}

func TestMarkdown(t *testing.T) {
	md := New("a", "b").SetTitle("T").AddRow("1", "2").Markdown()
	want := []string{"**T**", "| a | b |", "|---|---|", "| 1 | 2 |"}
	for _, w := range want {
		if !strings.Contains(md, w) {
			t.Fatalf("markdown missing %q:\n%s", w, md)
		}
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.4472) != "44.72" {
		t.Fatalf("Pct = %q", Pct(0.4472))
	}
	if F2(3.456) != "3.46" {
		t.Fatalf("F2 = %q", F2(3.456))
	}
}
