// Package texttable renders small aligned tables as plain text or
// Markdown — just enough for the experiment harness and CLIs to print
// the paper's tables legibly without external dependencies.
package texttable

import (
	"fmt"
	"strings"
)

// Table accumulates rows under a fixed header.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// New returns a table with the given column headers.
func New(headers ...string) *Table {
	return &Table{headers: append([]string(nil), headers...)}
}

// SetTitle attaches a title printed above the table.
func (t *Table) SetTitle(title string) *Table {
	t.title = title
	return t
}

// AddRow appends a row; missing cells render empty, extra cells are an
// error surfaced by String to keep call sites honest.
func (t *Table) AddRow(cells ...string) *Table {
	t.rows = append(t.rows, append([]string(nil), cells...))
	return t
}

// NumRows returns the number of data rows added.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	widths := t.widths()
	writeRow := func(cells []string) {
		for c := range widths {
			if c > 0 {
				b.WriteString("  ")
			}
			cell := ""
			if c < len(cells) {
				cell = cells[c]
			}
			fmt.Fprintf(&b, "%-*s", widths[c], cell)
		}
		// Trim the padding of the last column.
		s := b.String()
		trimmed := strings.TrimRight(s, " ")
		b.Reset()
		b.WriteString(trimmed)
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for c := range sep {
		sep[c] = strings.Repeat("-", widths[c])
	}
	writeRow(sep)
	for _, row := range t.rows {
		if len(row) > len(t.headers) {
			fmt.Fprintf(&b, "!! row has %d cells for %d columns\n", len(row), len(t.headers))
			continue
		}
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured Markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.title)
	}
	b.WriteString("| " + strings.Join(t.headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.headers)) + "\n")
	for _, row := range t.rows {
		cells := make([]string, len(t.headers))
		copy(cells, row)
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	return b.String()
}

func (t *Table) widths() []int {
	widths := make([]int, len(t.headers))
	for c, h := range t.headers {
		widths[c] = len(h)
	}
	for _, row := range t.rows {
		for c, cell := range row {
			if c < len(widths) && len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	return widths
}

// Pct formats a fraction as a percentage with two decimals, e.g.
// 0.4472 → "44.72".
func Pct(fraction float64) string { return fmt.Sprintf("%.2f", 100*fraction) }

// F2 formats a float with two decimals.
func F2(x float64) string { return fmt.Sprintf("%.2f", x) }
