package predict

import (
	"math/rand"
	"testing"

	"repro/internal/datasets"
	"repro/internal/gen"
	"repro/internal/sgraph"
)

func TestMethodString(t *testing.T) {
	for _, m := range Methods() {
		if m.String() == "" || m.String()[0] == 'M' && m != MajoritySP {
			// Just exercise String; uniqueness checked below.
		}
	}
	seen := map[string]bool{}
	for _, m := range Methods() {
		if seen[m.String()] {
			t.Fatalf("duplicate method name %s", m)
		}
		seen[m.String()] = true
	}
	if Method(99).String() != "Method(99)" {
		t.Fatal("unknown method String")
	}
}

func TestNewPredictorUnknownMethod(t *testing.T) {
	g := sgraph.MustFromEdges(2, []sgraph.Edge{{U: 0, V: 1, Sign: sgraph.Positive}})
	if _, err := NewPredictor(g, Method(99)); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestPredictOnBalancedGraphIsPerfect(t *testing.T) {
	// On a perfectly balanced connected graph, every predictor that
	// uses balance structure recovers the sign of any held-out edge
	// exactly: the sign is determined by the camps.
	rng := rand.New(rand.NewSource(3))
	topo, err := gen.ChungLu(rng, 200, 1200, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	topo.Connect(rng)
	camps := gen.RandomCamps(rng, 200, 0.3)
	// Pure faction signs: balanced by construction.
	inter := 0
	for _, e := range topo.Edges {
		if camps[e[0]] != camps[e[1]] {
			inter++
		}
	}
	edges, err := gen.FactionSigns(rng, topo, camps, float64(inter)/float64(len(topo.Edges)), 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.Build(topo.N, edges)
	if err != nil {
		t.Fatal(err)
	}

	results, err := Evaluate(g, rand.New(rand.NewSource(7)), 0.1, []Method{MajoritySP, BalancedPath, Camps})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Predicted == 0 {
			t.Fatalf("%v: no predictions", r.Method)
		}
		if r.Accuracy() != 1 {
			t.Fatalf("%v: accuracy %.3f on a balanced graph, want 1.0 (predicted %d, correct %d)",
				r.Method, r.Accuracy(), r.Predicted, r.Correct)
		}
	}
}

func TestPredictBeatsBaselineOnNoisyGraph(t *testing.T) {
	d, err := datasets.EpinionsSim(5, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	results, err := Evaluate(d.Graph, rand.New(rand.NewSource(11)), 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[Method]Result{}
	for _, r := range results {
		byMethod[r.Method] = r
	}
	base := byMethod[AlwaysPositive]
	if base.Coverage() != 1 {
		t.Fatal("baseline must always predict")
	}
	// The balance-aware methods must beat always-positive, which cannot
	// get any negative edge right.
	if base.CorrectNeg != 0 {
		t.Fatal("always-positive got a negative edge right?")
	}
	for _, m := range []Method{Camps, MajoritySP, BalancedPath} {
		r := byMethod[m]
		if r.Accuracy() <= base.Accuracy() {
			t.Fatalf("%v accuracy %.3f does not beat baseline %.3f", m, r.Accuracy(), base.Accuracy())
		}
		if r.CorrectNeg == 0 {
			t.Fatalf("%v never predicts negative correctly", m)
		}
	}
}

func TestEvaluateValidation(t *testing.T) {
	g := sgraph.MustFromEdges(3, []sgraph.Edge{
		{U: 0, V: 1, Sign: sgraph.Positive},
		{U: 1, V: 2, Sign: sgraph.Negative},
	})
	rng := rand.New(rand.NewSource(1))
	if _, err := Evaluate(g, rng, 0, nil); err == nil {
		t.Fatal("testFrac 0 accepted")
	}
	if _, err := Evaluate(g, rng, 1, nil); err == nil {
		t.Fatal("testFrac 1 accepted")
	}
	tiny := sgraph.MustFromEdges(2, []sgraph.Edge{{U: 0, V: 1, Sign: sgraph.Positive}})
	if _, err := Evaluate(tiny, rng, 0.5, nil); err == nil {
		t.Fatal("single-edge graph accepted")
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	d, err := datasets.SlashdotSim(2)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Evaluate(d.Graph, rand.New(rand.NewSource(9)), 0.15, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Evaluate(d.Graph, rand.New(rand.NewSource(9)), 0.15, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("nondeterministic result %d: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}

func TestPredictorAbstains(t *testing.T) {
	// Disconnected endpoints: path-based methods must abstain.
	g := sgraph.MustFromEdges(4, []sgraph.Edge{
		{U: 0, V: 1, Sign: sgraph.Positive},
		{U: 2, V: 3, Sign: sgraph.Negative},
	})
	for _, m := range []Method{MajoritySP, BalancedPath} {
		p, err := NewPredictor(g, m)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := p.Predict(0, 3); ok {
			t.Fatalf("%v predicted across components", m)
		}
	}
	// Camps and the baseline always answer.
	for _, m := range []Method{Camps, AlwaysPositive} {
		p, err := NewPredictor(g, m)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := p.Predict(0, 3); !ok {
			t.Fatalf("%v abstained", m)
		}
	}
}

func TestResultAccessorsEmpty(t *testing.T) {
	var r Result
	if r.Accuracy() != 0 || r.Coverage() != 0 {
		t.Fatal("zero Result accessors must be 0")
	}
}
