// Package predict applies the paper's compatibility machinery to edge
// sign prediction — the extension named in the paper's conclusions
// ("we plan ... to exploit compatibility for other tasks, such as
// link prediction") and studied in its related work (Leskovec et al.
// 2010; Chiang et al. 2011).
//
// The protocol is the standard hold-out: a fraction of edges becomes
// the test set, the remaining edges form the training graph, and each
// test edge's sign is predicted from the training graph alone. Three
// predictors are implemented, each derived from one of the paper's
// compatibility notions, plus the majority-class baseline:
//
//	MajoritySP   — sign of the majority of shortest training paths
//	               between the endpoints (the SPM view).
//	BalancedPath — sign of the shortest structurally balanced path
//	               found by the SBPH heuristic (the SBP view).
//	Camps        — global two-faction split minimising frustration;
//	               same camp ⇒ positive (the Harary/balance view).
//	AlwaysPositive — majority-class baseline.
//
// A predictor may abstain (e.g. endpoints disconnected in training);
// accuracy is reported over predicted pairs together with coverage.
package predict

import (
	"fmt"
	"math/rand"

	"repro/internal/balance"
	"repro/internal/sgraph"
	"repro/internal/signedbfs"
)

// Method enumerates the sign predictors.
type Method int

// The predictors.
const (
	MajoritySP Method = iota
	BalancedPath
	Camps
	AlwaysPositive
)

// Methods lists all predictors.
func Methods() []Method { return []Method{MajoritySP, BalancedPath, Camps, AlwaysPositive} }

// String names the method.
func (m Method) String() string {
	switch m {
	case MajoritySP:
		return "MajoritySP"
	case BalancedPath:
		return "BalancedPath"
	case Camps:
		return "Camps"
	case AlwaysPositive:
		return "AlwaysPositive"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Predictor predicts edge signs on a fixed training graph.
type Predictor struct {
	g      *sgraph.Graph
	method Method
	beam   int
	camps  []uint8
}

// NewPredictor prepares a predictor over the training graph. For the
// Camps method the two-faction split is computed once, up front.
func NewPredictor(g *sgraph.Graph, method Method) (*Predictor, error) {
	p := &Predictor{g: g, method: method, beam: balance.DefaultBeamWidth}
	switch method {
	case MajoritySP, BalancedPath, AlwaysPositive:
	case Camps:
		p.camps, _ = balance.BestCamps(g)
	default:
		return nil, fmt.Errorf("predict: unknown method %d", int(method))
	}
	return p, nil
}

// Predict returns the predicted sign of the pair (u,v) and ok=false
// when the method abstains.
func (p *Predictor) Predict(u, v sgraph.NodeID) (sgraph.Sign, bool) {
	switch p.method {
	case AlwaysPositive:
		return sgraph.Positive, true
	case Camps:
		if p.camps[u] == p.camps[v] {
			return sgraph.Positive, true
		}
		return sgraph.Negative, true
	case MajoritySP:
		r := signedbfs.CountPaths(p.g, u)
		if !r.Reachable(v) || (r.Pos[v] == 0 && r.Neg[v] == 0) {
			return 0, false
		}
		if r.Pos[v] >= r.Neg[v] {
			return sgraph.Positive, true
		}
		return sgraph.Negative, true
	case BalancedPath:
		d := balance.SBPH(p.g, u, p.beam)
		pos, neg := d.PosDist[v], d.NegDist[v]
		switch {
		case pos == balance.NoPath && neg == balance.NoPath:
			return 0, false
		case neg == balance.NoPath || (pos != balance.NoPath && pos <= neg):
			// Prefer the shorter certificate; ties go positive, as in
			// the SPM majority convention.
			return sgraph.Positive, true
		default:
			return sgraph.Negative, true
		}
	default:
		return 0, false
	}
}

// Result aggregates a hold-out evaluation for one method.
type Result struct {
	Method    Method
	Test      int // held-out edges
	Predicted int // non-abstentions
	Correct   int
	// CorrectPos / CorrectNeg break down by true sign; PosTest /
	// NegTest are the class sizes, so per-class accuracy is
	// CorrectPos/PosTest etc.
	CorrectPos, CorrectNeg int
	PosTest, NegTest       int
}

// Accuracy is the fraction of predicted test edges whose sign was
// right.
func (r Result) Accuracy() float64 {
	if r.Predicted == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Predicted)
}

// Coverage is the fraction of test edges the method predicted at all.
func (r Result) Coverage() float64 {
	if r.Test == 0 {
		return 0
	}
	return float64(r.Predicted) / float64(r.Test)
}

// Evaluate holds out testFrac of g's edges, trains every method on
// the remainder, and evaluates sign prediction on the held-out set.
// The split keeps the training graph's edge list deterministic in
// rng. testFrac must be in (0, 1); held-out edges whose endpoints
// become disconnected simply count against coverage.
func Evaluate(g *sgraph.Graph, rng *rand.Rand, testFrac float64, methods []Method) ([]Result, error) {
	if testFrac <= 0 || testFrac >= 1 {
		return nil, fmt.Errorf("predict: testFrac = %g out of (0,1)", testFrac)
	}
	if len(methods) == 0 {
		methods = Methods()
	}
	edges := g.Edges()
	if len(edges) < 2 {
		return nil, fmt.Errorf("predict: graph has only %d edges", len(edges))
	}
	perm := rng.Perm(len(edges))
	numTest := int(float64(len(edges)) * testFrac)
	if numTest == 0 {
		numTest = 1
	}
	test := make([]sgraph.Edge, 0, numTest)
	train := make([]sgraph.Edge, 0, len(edges)-numTest)
	for i, idx := range perm {
		if i < numTest {
			test = append(test, edges[idx])
		} else {
			train = append(train, edges[idx])
		}
	}
	trainGraph, err := sgraph.FromEdges(g.NumNodes(), train)
	if err != nil {
		return nil, fmt.Errorf("predict: building training graph: %w", err)
	}

	results := make([]Result, 0, len(methods))
	for _, m := range methods {
		p, err := NewPredictor(trainGraph, m)
		if err != nil {
			return nil, err
		}
		res := Result{Method: m, Test: len(test)}
		for _, e := range test {
			if e.Sign == sgraph.Positive {
				res.PosTest++
			} else {
				res.NegTest++
			}
			got, ok := p.Predict(e.U, e.V)
			if !ok {
				continue
			}
			res.Predicted++
			if got == e.Sign {
				res.Correct++
				if e.Sign == sgraph.Positive {
					res.CorrectPos++
				} else {
					res.CorrectNeg++
				}
			}
		}
		results = append(results, res)
	}
	return results, nil
}
