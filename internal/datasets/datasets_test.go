package datasets

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sgraph"
)

func TestSlashdotSimShape(t *testing.T) {
	d, err := SlashdotSim(1)
	if err != nil {
		t.Fatalf("SlashdotSim: %v", err)
	}
	s := d.ComputeStats()
	if s.Users != 214 {
		t.Fatalf("users = %d, want 214", s.Users)
	}
	if s.Edges < 280 || s.Edges > 330 {
		t.Fatalf("edges = %d, want ≈304", s.Edges)
	}
	if math.Abs(s.NegFrac-0.292) > 0.01 {
		t.Fatalf("neg frac = %.3f, want ≈0.292", s.NegFrac)
	}
	if !d.Graph.IsConnected() {
		t.Fatal("dataset must be connected")
	}
	if s.Diameter < 5 {
		t.Fatalf("diameter = %d, suspiciously small for a sparse graph", s.Diameter)
	}
	if d.Assign.Universe().Len() != 1024 {
		t.Fatalf("universe = %d skills, want 1024", d.Assign.Universe().Len())
	}
	if len(d.Camps) != 214 {
		t.Fatal("camps missing")
	}
}

func TestEpinionsSimShape(t *testing.T) {
	d, err := EpinionsSim(1, 0.05) // half the default scale to keep the test fast
	if err != nil {
		t.Fatalf("EpinionsSim: %v", err)
	}
	g := d.Graph
	scale := 0.05
	wantN := int(28854*scale + 0.5)
	if g.NumNodes() != wantN {
		t.Fatalf("users = %d, want %d", g.NumNodes(), wantN)
	}
	wantM := int(208778*scale + 0.5)
	if g.NumEdges() < wantM || g.NumEdges() > wantM+wantN/10 {
		t.Fatalf("edges = %d, want ≈%d", g.NumEdges(), wantM)
	}
	negFrac := float64(g.NumNegativeEdges()) / float64(g.NumEdges())
	if math.Abs(negFrac-0.167) > 0.01 {
		t.Fatalf("neg frac = %.3f, want ≈0.167", negFrac)
	}
	if !g.IsConnected() {
		t.Fatal("dataset must be connected")
	}
	if d.Assign.Universe().Len() != 523 {
		t.Fatalf("universe = %d, want 523", d.Assign.Universe().Len())
	}
}

func TestWikipediaSimShape(t *testing.T) {
	d, err := WikipediaSim(1, 0.1)
	if err != nil {
		t.Fatalf("WikipediaSim: %v", err)
	}
	g := d.Graph
	negFrac := float64(g.NumNegativeEdges()) / float64(g.NumEdges())
	if math.Abs(negFrac-0.215) > 0.01 {
		t.Fatalf("neg frac = %.3f, want ≈0.215", negFrac)
	}
	if !g.IsConnected() {
		t.Fatal("dataset must be connected")
	}
	// Denser than Epinions: average degree ≈28.5 at any scale.
	avgDeg := 2 * float64(g.NumEdges()) / float64(g.NumNodes())
	if avgDeg < 20 || avgDeg > 40 {
		t.Fatalf("average degree = %.1f, want ≈28.5", avgDeg)
	}
}

func TestDatasetsMostlyBalancedTriangles(t *testing.T) {
	// The stand-ins must live in the mostly-balanced regime of real
	// signed networks: the triangle census should be dominated by
	// balanced triangles (Leskovec et al. report ≈0.9 on the real
	// datasets).
	d, err := EpinionsSim(1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	s := d.ComputeStats()
	if s.Triangles.Total() == 0 {
		t.Fatal("Epinions stand-in has no triangles")
	}
	if f := s.Triangles.BalancedFraction(); f < 0.8 {
		t.Fatalf("balanced triangle fraction = %.3f, want ≥ 0.8 (mostly balanced)", f)
	}
}

func TestLoadByName(t *testing.T) {
	for _, name := range Names() {
		scale := 0.03
		d, err := Load(name, 7, scale)
		if err != nil {
			t.Fatalf("Load(%s): %v", name, err)
		}
		if d.Name != name {
			t.Fatalf("name = %q", d.Name)
		}
	}
	if _, err := Load("nope", 1, 0); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestLoadDeterministic(t *testing.T) {
	d1, err := SlashdotSim(42)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := SlashdotSim(42)
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := d1.Graph.Edges(), d2.Graph.Edges()
	if len(e1) != len(e2) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("nondeterministic edges")
		}
	}
	for u := 0; u < 214; u++ {
		s1, s2 := d1.Assign.UserSkills(sgraph.NodeID(u)), d2.Assign.UserSkills(sgraph.NodeID(u))
		if len(s1) != len(s2) {
			t.Fatal("nondeterministic skills")
		}
	}
	// Different seed differs.
	d3, err := SlashdotSim(43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	e3 := d3.Graph.Edges()
	if len(e3) != len(e1) {
		same = false
	} else {
		for i := range e1 {
			if e1[i] != e3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestScaleTooSmall(t *testing.T) {
	if _, err := EpinionsSim(1, 0.0001); err == nil {
		t.Fatal("degenerate scale accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snap")
	d, err := SlashdotSim(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	for _, suffix := range []string{".edges", ".skills"} {
		if _, err := os.Stat(filepath.Join(dir, "slashdot"+suffix)); err != nil {
			t.Fatalf("missing %s: %v", suffix, err)
		}
	}
	got, err := LoadDir(dir, "slashdot")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if got.Graph.NumEdges() != d.Graph.NumEdges() ||
		got.Graph.NumNegativeEdges() != d.Graph.NumNegativeEdges() {
		t.Fatal("edge counts changed through snapshot")
	}
	if got.Assign.TotalAssignments() != d.Assign.TotalAssignments() {
		t.Fatal("skill assignments changed through snapshot")
	}
}

func TestLoadDirMissing(t *testing.T) {
	if _, err := LoadDir(t.TempDir(), "absent"); err == nil {
		t.Fatal("missing dataset accepted")
	}
}
