// Package datasets provides the three evaluation datasets of the
// paper as calibrated synthetic stand-ins, plus snapshot IO.
//
// The paper uses the SNAP Slashdot and Epinions signed networks and
// the Wikipedia adminship-election network; those files are not
// available offline, so each dataset here is generated to match the
// published scale and sign statistics (Table 1 of the paper) with the
// generators in internal/gen:
//
//   - Slashdot: 214 users, ≈304 edges, 29.2% negative, sparse and
//     tree-like (diameter ≈9), 1024 Zipf skills. Generated at the
//     paper's exact scale so the exact SBP relation stays feasible,
//     as it is in the paper.
//   - Epinions: heavy-tailed (Chung–Lu) topology, 16.7% negative,
//     523 Zipf skills. Default scale 0.1 → ≈2,885 users / 20,878
//     edges, preserving the paper's average degree ≈14.5.
//   - Wikipedia: denser heavy-tailed topology, 21.5% negative, 500
//     synthetic Zipf skills (the paper itself synthesises Wikipedia's
//     skills the same way). Default scale 0.2 → ≈1,413 users / 20,158
//     edges, preserving average degree ≈28.5.
//
// Signs follow the two-faction mostly-balanced-plus-noise model,
// which reproduces the balance regime of real signed networks (see
// DESIGN.md for the substitution argument). All generation is
// deterministic in the seed.
package datasets

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/balance"
	"repro/internal/gen"
	"repro/internal/sgraph"
	"repro/internal/signedbfs"
	"repro/internal/skills"
)

// Dataset bundles a signed graph with its skill assignment.
type Dataset struct {
	Name   string
	Graph  *sgraph.Graph
	Assign *skills.Assignment
	// Camps is the planted faction assignment behind the signs
	// (synthetic ground truth; real datasets would not have it).
	Camps []uint8
}

// Names lists the available datasets.
func Names() []string { return []string{"slashdot", "epinions", "wikipedia"} }

// Load builds the named dataset. scale rescales node and edge counts
// for the Chung–Lu datasets (1 = the paper's full size); ≤0 selects
// the default documented on each constructor. Slashdot ignores scale:
// it is always built at the paper's own (tiny) size.
func Load(name string, seed int64, scale float64) (*Dataset, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "slashdot":
		return SlashdotSim(seed)
	case "epinions":
		return EpinionsSim(seed, scale)
	case "wikipedia":
		return WikipediaSim(seed, scale)
	default:
		return nil, fmt.Errorf("datasets: unknown dataset %q (want one of %v)", name, Names())
	}
}

// SlashdotSim builds the Slashdot stand-in: 214 users, ≈304 edges
// (29.2% negative), 1024 Zipf skills — the paper's smallest dataset,
// on which exact SBP is computed.
func SlashdotSim(seed int64) (*Dataset, error) {
	rng := rand.New(rand.NewSource(seed))
	const (
		n       = 214
		mTarget = 304
		negFrac = 0.292
	)
	// Leave room for the connectivity bridges Connect adds; the edge
	// count stays within a few percent of the paper's 304.
	topo, err := gen.ErdosRenyi(rng, n, mTarget-24)
	if err != nil {
		return nil, fmt.Errorf("datasets: slashdot topology: %w", err)
	}
	topo.Connect(rng)
	camps, err := gen.CampsForNegFraction(rng, n, negFrac)
	if err != nil {
		return nil, fmt.Errorf("datasets: slashdot camps: %w", err)
	}
	edges, err := gen.FactionSigns(rng, topo, camps, negFrac, 0.03)
	if err != nil {
		return nil, fmt.Errorf("datasets: slashdot signs: %w", err)
	}
	g, err := gen.Build(n, edges)
	if err != nil {
		return nil, fmt.Errorf("datasets: slashdot build: %w", err)
	}
	assign, err := skills.GenerateZipf(rng, n, skills.ZipfConfig{
		NumSkills:         1024,
		MeanSkillsPerUser: 5,
	})
	if err != nil {
		return nil, fmt.Errorf("datasets: slashdot skills: %w", err)
	}
	return &Dataset{Name: "slashdot", Graph: g, Assign: assign, Camps: camps}, nil
}

// EpinionsSim builds the Epinions stand-in at the given scale of the
// paper's 28,854 users / 208,778 edges (16.7% negative, 523 skills).
// scale ≤ 0 selects the default 0.1.
func EpinionsSim(seed int64, scale float64) (*Dataset, error) {
	if scale <= 0 {
		scale = 0.1
	}
	return chungLuDataset("epinions", seed, chungLuParams{
		fullUsers:    28854,
		fullEdges:    208778,
		scale:        scale,
		gamma:        2.4,
		negFrac:      0.167,
		noise:        0.05,
		numSkills:    523,
		meanSkill:    5,
		productModel: true, // skills come from product reviews, as in the paper's RED join
	})
}

// WikipediaSim builds the Wikipedia stand-in at the given scale of
// the paper's 7,066 users / 100,790 edges (21.5% negative, 500
// synthetic skills). scale ≤ 0 selects the default 0.2.
func WikipediaSim(seed int64, scale float64) (*Dataset, error) {
	if scale <= 0 {
		scale = 0.2
	}
	return chungLuDataset("wikipedia", seed, chungLuParams{
		fullUsers: 7066,
		fullEdges: 100790,
		scale:     scale,
		gamma:     2.2,
		negFrac:   0.215,
		noise:     0.05,
		numSkills: 500,
		meanSkill: 5,
	})
}

type chungLuParams struct {
	fullUsers, fullEdges int
	scale                float64
	gamma                float64
	negFrac, noise       float64
	numSkills            int
	meanSkill            float64
	// productModel switches the skill generator to the two-level
	// product-review process (products have categories, users review
	// products), matching how the paper builds Epinions skills from
	// the RED dataset. Wikipedia keeps the flat Zipf draw, exactly as
	// the paper synthesises it.
	productModel bool
}

func chungLuDataset(name string, seed int64, p chungLuParams) (*Dataset, error) {
	rng := rand.New(rand.NewSource(seed))
	n := int(float64(p.fullUsers)*p.scale + 0.5)
	m := int(float64(p.fullEdges)*p.scale + 0.5)
	if n < 10 {
		return nil, fmt.Errorf("datasets: %s scale %g leaves only %d users", name, p.scale, n)
	}
	topo, err := gen.ChungLu(rng, n, m, p.gamma)
	if err != nil {
		return nil, fmt.Errorf("datasets: %s topology: %w", name, err)
	}
	topo.Connect(rng)
	camps, err := gen.CampsForNegFraction(rng, n, p.negFrac)
	if err != nil {
		return nil, fmt.Errorf("datasets: %s camps: %w", name, err)
	}
	edges, err := gen.FactionSigns(rng, topo, camps, p.negFrac, p.noise)
	if err != nil {
		return nil, fmt.Errorf("datasets: %s signs: %w", name, err)
	}
	g, err := gen.Build(n, edges)
	if err != nil {
		return nil, fmt.Errorf("datasets: %s build: %w", name, err)
	}
	var assign *skills.Assignment
	if p.productModel {
		assign, err = skills.GenerateProductReviews(rng, n, skills.ProductReviewConfig{
			// A catalogue an order of magnitude larger than the user
			// base, as in review sites.
			NumProducts:        10 * n,
			NumCategories:      p.numSkills,
			MeanReviewsPerUser: 2 * p.meanSkill, // reviews dedupe into ≈meanSkill categories
		})
	} else {
		assign, err = skills.GenerateZipf(rng, n, skills.ZipfConfig{
			NumSkills:         p.numSkills,
			MeanSkillsPerUser: p.meanSkill,
		})
	}
	if err != nil {
		return nil, fmt.Errorf("datasets: %s skills: %w", name, err)
	}
	return &Dataset{Name: name, Graph: g, Assign: assign, Camps: camps}, nil
}

// Stats summarises a dataset as in the paper's Table 1, extended with
// the signed triangle census (the structural-balance diagnostic of
// Leskovec et al. 2010, whose datasets the paper uses).
type Stats struct {
	Name     string
	Users    int
	Edges    int
	NegEdges int
	NegFrac  float64
	Diameter int32
	Skills   int // skills with at least one holder
	// Triangles is the signed triangle census; its BalancedFraction
	// should be high for realistic stand-ins.
	Triangles balance.TriangleCensus
}

// ComputeStats measures the Table 1 row for d. The diameter is exact
// (one BFS per node, parallelised).
func (d *Dataset) ComputeStats() Stats {
	return Stats{
		Name:      d.Name,
		Users:     d.Graph.NumNodes(),
		Edges:     d.Graph.NumEdges(),
		NegEdges:  d.Graph.NumNegativeEdges(),
		NegFrac:   float64(d.Graph.NumNegativeEdges()) / float64(max(1, d.Graph.NumEdges())),
		Diameter:  signedbfs.Diameter(d.Graph),
		Skills:    len(d.Assign.SkillsWithHolders()),
		Triangles: balance.CountTriangles(d.Graph),
	}
}

// Save writes the dataset as <dir>/<name>.edges and <dir>/<name>.skills.
func (d *Dataset) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("datasets: save: %w", err)
	}
	ef, err := os.Create(filepath.Join(dir, d.Name+".edges"))
	if err != nil {
		return fmt.Errorf("datasets: save: %w", err)
	}
	defer ef.Close()
	if err := sgraph.WriteEdgeList(ef, d.Graph, nil); err != nil {
		return err
	}
	sf, err := os.Create(filepath.Join(dir, d.Name+".skills"))
	if err != nil {
		return fmt.Errorf("datasets: save: %w", err)
	}
	defer sf.Close()
	return skills.WriteTSV(sf, d.Assign)
}

// LoadDir reads a dataset saved by Save.
func LoadDir(dir, name string) (*Dataset, error) {
	ef, err := os.Open(filepath.Join(dir, name+".edges"))
	if err != nil {
		return nil, fmt.Errorf("datasets: load: %w", err)
	}
	defer ef.Close()
	g, _, err := sgraph.ReadEdgeList(ef)
	if err != nil {
		return nil, err
	}
	sf, err := os.Open(filepath.Join(dir, name+".skills"))
	if err != nil {
		return nil, fmt.Errorf("datasets: load: %w", err)
	}
	defer sf.Close()
	assign, err := skills.ReadTSV(sf, g.NumNodes())
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: name, Graph: g, Assign: assign}, nil
}
