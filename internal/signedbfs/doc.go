// Package signedbfs implements Algorithm 1 of "Forming Compatible
// Teams in Signed Networks" (EDBT 2020): a single-source BFS over a
// signed graph that counts, for every reachable node, the number of
// positive and of negative shortest paths from the source.
//
// The sign of a path is the product of its edge signs. Walking a
// positive edge preserves every path's sign; walking a negative edge
// flips it. The BFS therefore propagates the counter pair (N+, N−)
// along shortest-path DAG edges, swapping the pair on negative edges.
//
// Shortest-path counts grow exponentially in the worst case, so the
// production counters are saturating uint64s: an overflowing addition
// sticks to MaxUint64 and the result records that saturation happened.
// Zero/non-zero tests (all the SPA/SPO compatibility logic needs) are
// always exact; the SPM majority comparison can be inexact only when
// both counters of the same node saturate, which Result.Saturated
// exposes. CountPathsBig is an exact math/big variant used by tests
// and the path-counting ablation to cross-check.
//
// # Allocation discipline
//
// CountPaths and Distances allocate per call; the *Into variants
// write into caller-owned result storage and take a Scratch for all
// transient traversal state (queue, epoch-stamped discovery marks),
// so a warm (result, Scratch) pair performs no heap allocations. The
// all-pairs sweeps in the compat package — Precompute, ComputeStats,
// the CompatMatrix build and the per-shard builds of ShardedMatrix —
// rely on this: each worker owns one Scratch and reuses it across all
// sources it is handed, whether those sources span the whole graph or
// one row shard at a time. CI's alloc-regression smoke test keeps the
// warm path at 0 allocs/op.
package signedbfs
