package signedbfs

import (
	"math/rand"
	"testing"

	"repro/internal/sgraph"
)

func randomSignedGraph(rng *rand.Rand, n, m int, negFrac float64) *sgraph.Graph {
	b := sgraph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u, v := sgraph.NodeID(rng.Intn(n)), sgraph.NodeID(rng.Intn(n))
		if u == v || b.HasEdge(u, v) {
			continue
		}
		s := sgraph.Positive
		if rng.Float64() < negFrac {
			s = sgraph.Negative
		}
		b.AddEdge(u, v, s)
	}
	return b.MustBuild()
}

// TestCountPathsIntoMatchesFresh: a single (Result, Scratch) pair
// reused across every source of several random graphs — including
// disconnected ones, whose stale unreached entries the epoch stamps
// must reset — always reproduces the fresh CountPaths output exactly.
func TestCountPathsIntoMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	var res Result
	var scratch *Scratch
	for trial := 0; trial < 12; trial++ {
		n := 5 + rng.Intn(40)
		// Sparse graphs are frequently disconnected, exercising the
		// unreached-node cleanup between reuses.
		g := randomSignedGraph(rng, n, n+rng.Intn(3*n), 0.3)
		if scratch == nil {
			scratch = NewScratch(g.NumNodes())
		}
		for src := sgraph.NodeID(0); int(src) < n; src++ {
			want := CountPaths(g, src)
			got := CountPathsInto(g, src, &res, scratch)
			if got.Source != want.Source || got.SaturatedAt != want.SaturatedAt {
				t.Fatalf("trial %d src %d: header mismatch", trial, src)
			}
			for v := 0; v < n; v++ {
				if got.Dist[v] != want.Dist[v] || got.Pos[v] != want.Pos[v] || got.Neg[v] != want.Neg[v] {
					t.Fatalf("trial %d src %d node %d: got (d=%d,p=%d,n=%d) want (d=%d,p=%d,n=%d)",
						trial, src, v,
						got.Dist[v], got.Pos[v], got.Neg[v],
						want.Dist[v], want.Pos[v], want.Neg[v])
				}
			}
		}
	}
}

// TestDistancesIntoMatchesFresh is the sign-oblivious counterpart of
// the property above.
func TestDistancesIntoMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	var dist []int32
	scratch := NewScratch(0)
	for trial := 0; trial < 12; trial++ {
		n := 5 + rng.Intn(40)
		g := randomSignedGraph(rng, n, n+rng.Intn(3*n), 0.3)
		for src := sgraph.NodeID(0); int(src) < n; src++ {
			want := Distances(g, src)
			dist = DistancesInto(g, src, dist, scratch)
			for v := 0; v < n; v++ {
				if dist[v] != want[v] {
					t.Fatalf("trial %d src %d node %d: got %d want %d", trial, src, v, dist[v], want[v])
				}
			}
		}
	}
}

// TestCountPathsIntoWarmZeroAllocs: the acceptance criterion of the
// zero-allocation engine — a warm (Result, Scratch) pair traverses
// without touching the heap.
func TestCountPathsIntoWarmZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	g := randomSignedGraph(rng, 200, 800, 0.3)
	var res Result
	scratch := NewScratch(g.NumNodes())
	CountPathsInto(g, 0, &res, scratch) // warm the buffers
	src := sgraph.NodeID(0)
	allocs := testing.AllocsPerRun(50, func() {
		CountPathsInto(g, src, &res, scratch)
		src = (src + 7) % sgraph.NodeID(g.NumNodes())
	})
	if allocs != 0 {
		t.Fatalf("warm CountPathsInto allocates %.1f objects/op, want 0", allocs)
	}
	var dist []int32
	dist = DistancesInto(g, 0, dist, scratch)
	allocs = testing.AllocsPerRun(50, func() {
		dist = DistancesInto(g, src, dist, scratch)
		src = (src + 7) % sgraph.NodeID(g.NumNodes())
	})
	if allocs != 0 {
		t.Fatalf("warm DistancesInto allocates %.1f objects/op, want 0", allocs)
	}
}

// TestScratchGrowsAcrossGraphs: a scratch sized for a small graph must
// transparently serve a larger one.
func TestScratchGrowsAcrossGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	small := randomSignedGraph(rng, 6, 12, 0.3)
	big := randomSignedGraph(rng, 120, 500, 0.3)
	scratch := NewScratch(small.NumNodes())
	var res Result
	CountPathsInto(small, 0, &res, scratch)
	got := CountPathsInto(big, 3, &res, scratch)
	want := CountPaths(big, 3)
	for v := range want.Dist {
		if got.Dist[v] != want.Dist[v] || got.Pos[v] != want.Pos[v] || got.Neg[v] != want.Neg[v] {
			t.Fatalf("node %d mismatch after scratch growth", v)
		}
	}
}
