package signedbfs

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sgraph"
)

// figure1a builds the example of Figure 1(a) of the paper (an instance
// consistent with its stated properties): u=0, x1=1, x2=2, x3=3, x4=4,
// v=5. The only shortest u–v path (u,x1,v) is negative; (u,x2,x1,v) is
// positive but not structurally balanced; (u,x2,x3,x4,v) is positive
// and structurally balanced.
func figure1a() *sgraph.Graph {
	return sgraph.MustFromEdges(6, []sgraph.Edge{
		{U: 0, V: 1, Sign: sgraph.Negative},
		{U: 1, V: 5, Sign: sgraph.Positive},
		{U: 0, V: 2, Sign: sgraph.Positive},
		{U: 1, V: 2, Sign: sgraph.Positive},
		{U: 2, V: 3, Sign: sgraph.Positive},
		{U: 3, V: 4, Sign: sgraph.Positive},
		{U: 4, V: 5, Sign: sgraph.Positive},
	})
}

func TestCountPathsTriangle(t *testing.T) {
	// 0 −(+) 1, 1 −(+) 2, 0 −(−) 2.
	g := sgraph.MustFromEdges(3, []sgraph.Edge{
		{U: 0, V: 1, Sign: sgraph.Positive},
		{U: 1, V: 2, Sign: sgraph.Positive},
		{U: 0, V: 2, Sign: sgraph.Negative},
	})
	r := CountPaths(g, 0)
	if r.Dist[0] != 0 || r.Pos[0] != 1 || r.Neg[0] != 0 {
		t.Fatalf("source: dist=%d pos=%d neg=%d", r.Dist[0], r.Pos[0], r.Neg[0])
	}
	if r.Dist[1] != 1 || r.Pos[1] != 1 || r.Neg[1] != 0 {
		t.Fatalf("node 1: dist=%d pos=%d neg=%d, want 1/1/0", r.Dist[1], r.Pos[1], r.Neg[1])
	}
	// Node 2 is adjacent via the negative edge: one negative shortest path.
	if r.Dist[2] != 1 || r.Pos[2] != 0 || r.Neg[2] != 1 {
		t.Fatalf("node 2: dist=%d pos=%d neg=%d, want 1/0/1", r.Dist[2], r.Pos[2], r.Neg[2])
	}
	if r.HasPositive(2) || !r.HasNegative(2) || r.AllPositive(2) {
		t.Fatal("sign predicates wrong for node 2")
	}
	if !r.MajorityPositive(1) || r.MajorityPositive(2) {
		t.Fatal("majority predicates wrong")
	}
}

func TestCountPathsFigure1a(t *testing.T) {
	g := figure1a()
	r := CountPaths(g, 0)
	// Only shortest path u→v is (u,x1,v), negative, length 2.
	if r.Dist[5] != 2 {
		t.Fatalf("dist(u,v) = %d, want 2", r.Dist[5])
	}
	if r.Pos[5] != 0 || r.Neg[5] != 1 {
		t.Fatalf("u→v counts pos=%d neg=%d, want 0/1", r.Pos[5], r.Neg[5])
	}
	if r.HasPositive(5) {
		t.Fatal("u,v must have no positive shortest path (not SPO compatible)")
	}
}

func TestCountPathsParallelShortestPaths(t *testing.T) {
	// Diamond: 0→{1,2}→3 with one negative side.
	// Paths 0-1-3 (+ +) = + and 0-2-3 (− +) = −.
	g := sgraph.MustFromEdges(4, []sgraph.Edge{
		{U: 0, V: 1, Sign: sgraph.Positive},
		{U: 0, V: 2, Sign: sgraph.Negative},
		{U: 1, V: 3, Sign: sgraph.Positive},
		{U: 2, V: 3, Sign: sgraph.Positive},
	})
	r := CountPaths(g, 0)
	if r.Dist[3] != 2 || r.Pos[3] != 1 || r.Neg[3] != 1 {
		t.Fatalf("node 3: dist=%d pos=%d neg=%d, want 2/1/1", r.Dist[3], r.Pos[3], r.Neg[3])
	}
	if !r.MajorityPositive(3) {
		t.Fatal("tie should count as majority-positive (|SP+| ≥ |SP−|)")
	}
}

func TestCountPathsUnreachable(t *testing.T) {
	g := sgraph.MustFromEdges(3, []sgraph.Edge{{U: 0, V: 1, Sign: sgraph.Positive}})
	r := CountPaths(g, 0)
	if r.Reachable(2) || r.Dist[2] != Unreachable {
		t.Fatal("node 2 should be unreachable")
	}
	if r.Pos[2] != 0 || r.Neg[2] != 0 {
		t.Fatal("unreachable node has path counts")
	}
	if r.MajorityPositive(2) {
		t.Fatal("unreachable node cannot be majority-positive")
	}
}

// bruteCounts enumerates every simple path of minimal length from src
// to every node by exhaustive DFS (exponential; for tiny graphs only)
// and counts signs.
func bruteCounts(g *sgraph.Graph, src sgraph.NodeID) (dist []int32, pos, neg []uint64) {
	n := g.NumNodes()
	dist = Distances(g, src)
	pos = make([]uint64, n)
	neg = make([]uint64, n)
	onPath := make([]bool, n)
	var dfs func(u sgraph.NodeID, depth int32, sign sgraph.Sign)
	dfs = func(u sgraph.NodeID, depth int32, sign sgraph.Sign) {
		if depth == dist[u] {
			if sign == sgraph.Positive {
				pos[u]++
			} else {
				neg[u]++
			}
		}
		onPath[u] = true
		ids := g.NeighborIDs(u)
		signs := g.NeighborSigns(u)
		for i, v := range ids {
			if !onPath[v] && depth+1 <= dist[v] {
				dfs(v, depth+1, sign*signs[i])
			}
		}
		onPath[u] = false
	}
	dfs(src, 0, sgraph.Positive)
	return dist, pos, neg
}

// TestCountPathsMatchesBruteForce cross-checks Algorithm 1 against
// exhaustive enumeration on random graphs.
func TestCountPathsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(9)
		b := sgraph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			u, v := sgraph.NodeID(rng.Intn(n)), sgraph.NodeID(rng.Intn(n))
			if u == v || b.HasEdge(u, v) {
				continue
			}
			s := sgraph.Positive
			if rng.Intn(2) == 0 {
				s = sgraph.Negative
			}
			b.AddEdge(u, v, s)
		}
		g := b.MustBuild()
		src := sgraph.NodeID(rng.Intn(n))
		r := CountPaths(g, src)
		dist, pos, neg := bruteCounts(g, src)
		for v := 0; v < n; v++ {
			if r.Dist[v] != dist[v] || r.Pos[v] != pos[v] || r.Neg[v] != neg[v] {
				t.Fatalf("trial %d node %d: got (%d,%d,%d), brute (%d,%d,%d)",
					trial, v, r.Dist[v], r.Pos[v], r.Neg[v], dist[v], pos[v], neg[v])
			}
		}
	}
}

// TestCountPathsMatchesBig cross-checks saturating counters against
// exact big.Int arithmetic on random graphs (no saturation expected at
// this scale).
func TestCountPathsMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(60)
		b := sgraph.NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			u, v := sgraph.NodeID(rng.Intn(n)), sgraph.NodeID(rng.Intn(n))
			if u == v || b.HasEdge(u, v) {
				continue
			}
			s := sgraph.Positive
			if rng.Intn(3) == 0 {
				s = sgraph.Negative
			}
			b.AddEdge(u, v, s)
		}
		g := b.MustBuild()
		src := sgraph.NodeID(rng.Intn(n))
		r := CountPaths(g, src)
		rb := CountPathsBig(g, src)
		if r.SaturatedAt {
			t.Fatal("unexpected saturation on a small graph")
		}
		for v := 0; v < n; v++ {
			if r.Dist[v] != rb.Dist[v] {
				t.Fatalf("dist mismatch at %d", v)
			}
			if !rb.Pos[v].IsUint64() || rb.Pos[v].Uint64() != r.Pos[v] {
				t.Fatalf("pos mismatch at %d: %d vs %s", v, r.Pos[v], rb.Pos[v])
			}
			if !rb.Neg[v].IsUint64() || rb.Neg[v].Uint64() != r.Neg[v] {
				t.Fatalf("neg mismatch at %d: %d vs %s", v, r.Neg[v], rb.Neg[v])
			}
		}
	}
}

// diamondChain builds a chain of k diamonds: each diamond doubles the
// number of shortest paths, so counts reach 2^k.
func diamondChain(k int, negEvery int) *sgraph.Graph {
	// Nodes: 0, then per diamond i: top=3i+1, bottom=3i+2, join=3i+3.
	b := sgraph.NewBuilder(3*k + 1)
	for i := 0; i < k; i++ {
		in := sgraph.NodeID(3 * i)
		top, bot, out := in+1, in+2, in+3
		s := sgraph.Positive
		if negEvery > 0 && i%negEvery == 0 {
			s = sgraph.Negative
		}
		b.AddEdge(in, top, s)
		b.AddEdge(in, bot, sgraph.Positive)
		b.AddEdge(top, out, sgraph.Positive)
		b.AddEdge(bot, out, sgraph.Positive)
	}
	return b.MustBuild()
}

func TestCountPathsExponentialNoOverflowAt62(t *testing.T) {
	g := diamondChain(62, 0)
	r := CountPaths(g, 0)
	end := sgraph.NodeID(g.NumNodes() - 1)
	if r.SaturatedAt {
		t.Fatal("2^62 paths must not saturate uint64")
	}
	if r.Pos[end] != uint64(1)<<62 {
		t.Fatalf("pos = %d, want 2^62", r.Pos[end])
	}
}

func TestCountPathsSaturates(t *testing.T) {
	g := diamondChain(70, 0)
	r := CountPaths(g, 0)
	end := sgraph.NodeID(g.NumNodes() - 1)
	if !r.SaturatedAt {
		t.Fatal("2^70 paths must saturate")
	}
	if r.Pos[end] != math.MaxUint64 {
		t.Fatalf("saturated count = %d, want MaxUint64", r.Pos[end])
	}
	// Zero/non-zero predicates stay exact under saturation.
	if !r.HasPositive(end) || r.HasNegative(end) {
		t.Fatal("sign predicates corrupted by saturation")
	}
}

func TestCountPathsBigExactBeyondUint64(t *testing.T) {
	g := diamondChain(70, 0)
	r := CountPathsBig(g, 0)
	end := sgraph.NodeID(g.NumNodes() - 1)
	if r.Pos[end].BitLen() != 71 { // 2^70 has 71 bits
		t.Fatalf("big pos bitlen = %d, want 71", r.Pos[end].BitLen())
	}
}
