// The allocating single-source entry points and the saturating
// counter arithmetic. Package documentation lives in doc.go.

package signedbfs

import (
	"math"
	"math/big"

	"repro/internal/container"
	"repro/internal/sgraph"
)

// Unreachable is the distance reported for nodes with no path from the
// source.
const Unreachable = int32(-1)

// Result holds the output of CountPaths for one source node.
type Result struct {
	Source sgraph.NodeID
	// Dist[v] is the shortest-path length from Source to v, or
	// Unreachable.
	Dist []int32
	// Pos[v] and Neg[v] are the numbers of positive and negative
	// shortest paths from Source to v, saturating at MaxUint64.
	Pos, Neg []uint64
	// SaturatedAt is true when at least one counter addition
	// saturated, meaning Pos/Neg values are lower bounds.
	SaturatedAt bool
}

// HasPositive reports whether at least one shortest path from the
// source to v is positive. Exact even under saturation.
func (r *Result) HasPositive(v sgraph.NodeID) bool { return r.Pos[v] > 0 }

// HasNegative reports whether at least one shortest path from the
// source to v is negative. Exact even under saturation.
func (r *Result) HasNegative(v sgraph.NodeID) bool { return r.Neg[v] > 0 }

// AllPositive reports whether every shortest path from the source to v
// is positive (and at least one path exists).
func (r *Result) AllPositive(v sgraph.NodeID) bool {
	return r.Pos[v] > 0 && r.Neg[v] == 0
}

// MajorityPositive reports whether positive shortest paths are at
// least as many as negative ones (and v is reachable). Can be inexact
// only when both counters saturated; see Result.SaturatedAt.
func (r *Result) MajorityPositive(v sgraph.NodeID) bool {
	return r.Dist[v] != Unreachable && r.Pos[v] >= r.Neg[v]
}

// Reachable reports whether v is reachable from the source.
func (r *Result) Reachable(v sgraph.NodeID) bool { return r.Dist[v] != Unreachable }

// CountPaths runs the signed path-counting BFS (Algorithm 1) from src.
// It is a convenience wrapper over CountPathsInto with a fresh Result
// and Scratch; all-pairs sweeps should hold one Scratch per worker and
// call CountPathsInto directly to avoid the per-source allocations.
func CountPaths(g *sgraph.Graph, src sgraph.NodeID) *Result {
	return CountPathsInto(g, src, &Result{}, NewScratch(g.NumNodes()))
}

func (r *Result) satAdd(a, b uint64) uint64 {
	s := a + b
	if s < a {
		r.SaturatedAt = true
		return math.MaxUint64
	}
	return s
}

// BigResult is the exact-arithmetic counterpart of Result.
type BigResult struct {
	Source   sgraph.NodeID
	Dist     []int32
	Pos, Neg []*big.Int
}

// CountPathsBig runs Algorithm 1 with exact big.Int counters. It is
// an order of magnitude slower than CountPaths and exists to validate
// the saturating implementation (see the path-counting ablation).
func CountPathsBig(g *sgraph.Graph, src sgraph.NodeID) *BigResult {
	n := g.NumNodes()
	res := &BigResult{
		Source: src,
		Dist:   make([]int32, n),
		Pos:    make([]*big.Int, n),
		Neg:    make([]*big.Int, n),
	}
	for i := range res.Dist {
		res.Dist[i] = Unreachable
		res.Pos[i] = new(big.Int)
		res.Neg[i] = new(big.Int)
	}
	res.Dist[src] = 0
	res.Pos[src].SetInt64(1)

	q := container.NewIntQueue(n)
	q.Push(src)
	for !q.Empty() {
		u := q.Pop()
		du := res.Dist[u]
		ids := g.NeighborIDs(u)
		signs := g.NeighborSigns(u)
		for i, v := range ids {
			if res.Dist[v] == Unreachable {
				res.Dist[v] = du + 1
				q.Push(v)
			}
			if res.Dist[v] == du+1 {
				if signs[i] == sgraph.Positive {
					res.Pos[v].Add(res.Pos[v], res.Pos[u])
					res.Neg[v].Add(res.Neg[v], res.Neg[u])
				} else {
					res.Neg[v].Add(res.Neg[v], res.Pos[u])
					res.Pos[v].Add(res.Pos[v], res.Neg[u])
				}
			}
		}
	}
	return res
}
