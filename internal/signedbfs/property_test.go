package signedbfs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sgraph"
)

// TestCountsSymmetric: on an undirected signed graph, reversing a
// shortest path preserves its length and sign, so the per-pair counts
// must be symmetric: N±(u→v) == N±(v→u).
func TestCountsSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		g := randomGraph(rng, n, 3*n, 0.3)
		results := make([]*Result, n)
		for u := 0; u < n; u++ {
			results[u] = CountPaths(g, sgraph.NodeID(u))
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				ru, rv := results[u], results[v]
				if ru.Dist[v] != rv.Dist[u] {
					return false
				}
				if ru.Pos[v] != rv.Pos[u] || ru.Neg[v] != rv.Neg[u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDistTriangleInequality: BFS distances satisfy
// d(u,w) ≤ d(u,v) + d(v,w) whenever all three are finite.
func TestDistTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(15)
		g := randomGraph(rng, n, 3*n, 0.3)
		dist := make([][]int32, n)
		for u := 0; u < n; u++ {
			dist[u] = Distances(g, sgraph.NodeID(u))
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				for w := 0; w < n; w++ {
					duv, dvw, duw := dist[u][v], dist[v][w], dist[u][w]
					if duv == Unreachable || dvw == Unreachable {
						continue
					}
					if duw == Unreachable || duw > duv+dvw {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestCountsLowerBoundReachability: every reachable node has at least
// one shortest path (Pos+Neg ≥ 1), and unreachable nodes have none.
func TestCountsLowerBoundReachability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(25)
		g := randomGraph(rng, n, 2*n, 0.4)
		src := sgraph.NodeID(rng.Intn(n))
		r := CountPaths(g, src)
		for v := 0; v < n; v++ {
			total := r.Pos[v] + r.Neg[v]
			if r.Reachable(sgraph.NodeID(v)) {
				if total == 0 {
					return false
				}
			} else if total != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
