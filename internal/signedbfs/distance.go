package signedbfs

import (
	"runtime"
	"sync"

	"repro/internal/sgraph"
)

// Distances returns the single-source shortest-path lengths from src,
// ignoring edge signs. Unreachable nodes get Unreachable. It wraps
// DistancesInto with a fresh slice and Scratch.
func Distances(g *sgraph.Graph, src sgraph.NodeID) []int32 {
	return DistancesInto(g, src, nil, NewScratch(g.NumNodes()))
}

// Eccentricity returns the largest finite distance from src, i.e. the
// eccentricity of src within its connected component.
func Eccentricity(g *sgraph.Graph, src sgraph.NodeID) int32 {
	ecc := int32(0)
	for _, d := range Distances(g, src) {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter computes the exact diameter of g — the largest shortest-path
// distance between any two nodes in the same component — by running a
// BFS from every node, fanned out over all CPUs.
func Diameter(g *sgraph.Graph) int32 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	results := make([]int32, workers)
	var next int32
	var wg sync.WaitGroup
	var mu sync.Mutex
	nextSource := func() sgraph.NodeID {
		mu.Lock()
		defer mu.Unlock()
		if int(next) >= n {
			return -1
		}
		s := next
		next++
		return s
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scratch := NewScratch(n)
			var dist []int32
			for {
				s := nextSource()
				if s < 0 {
					return
				}
				dist = DistancesInto(g, s, dist, scratch)
				for _, d := range dist {
					if d > results[w] {
						results[w] = d
					}
				}
			}
		}(w)
	}
	wg.Wait()
	diam := int32(0)
	for _, e := range results {
		if e > diam {
			diam = e
		}
	}
	return diam
}

// ApproxDiameter lower-bounds the diameter with the double-sweep
// heuristic repeated rounds times from distinct start nodes: BFS from a
// start node, then BFS again from the farthest node found. On many
// real-world graphs the bound is tight. starts selects the initial
// nodes; the function deduplicates the sweeps' work only trivially, so
// cost is 2*rounds BFS runs.
func ApproxDiameter(g *sgraph.Graph, starts []sgraph.NodeID) int32 {
	best := int32(0)
	for _, s := range starts {
		dist := Distances(g, s)
		far := s
		for v, d := range dist {
			if d > dist[far] {
				far = sgraph.NodeID(v)
			}
		}
		if e := Eccentricity(g, far); e > best {
			best = e
		}
	}
	return best
}

// AverageDistance returns the mean shortest-path distance over all
// ordered reachable pairs (u,v), u≠v, computed exactly with one BFS
// per node. It returns 0 for graphs with no such pairs.
func AverageDistance(g *sgraph.Graph) float64 {
	n := g.NumNodes()
	var sum, cnt int64
	scratch := NewScratch(n)
	var dist []int32
	for s := sgraph.NodeID(0); int(s) < n; s++ {
		dist = DistancesInto(g, s, dist, scratch)
		for v, d := range dist {
			if d > 0 && sgraph.NodeID(v) != s {
				sum += int64(d)
				cnt++
			}
		}
	}
	if cnt == 0 {
		return 0
	}
	return float64(sum) / float64(cnt)
}
