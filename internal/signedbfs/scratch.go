package signedbfs

import (
	"math"

	"repro/internal/container"
	"repro/internal/sgraph"
)

// Scratch holds the reusable per-traversal state of the BFS routines:
// an epoch-stamped discovery array (so no O(n) clear is needed between
// runs) and the FIFO queue. A warm Scratch makes CountPathsInto and
// DistancesInto allocation-free, which is what the all-pairs sweeps
// (CompatMatrix construction, ComputeStats, Precompute) rely on — each
// worker owns one Scratch and reuses it across its sources.
//
// A Scratch is not safe for concurrent use; give every goroutine its
// own.
type Scratch struct {
	epoch int32
	seen  []int32 // seen[v] == epoch ⇔ v was discovered this traversal
	queue container.IntQueue
}

// NewScratch returns a Scratch sized for graphs of up to n nodes. It
// grows automatically if later used on a larger graph.
func NewScratch(n int) *Scratch {
	s := &Scratch{seen: make([]int32, n)}
	s.queue = *container.NewIntQueue(n)
	return s
}

// begin starts a new traversal epoch over n nodes and returns the
// stamp array and epoch value.
func (s *Scratch) begin(n int) ([]int32, int32) {
	if len(s.seen) < n {
		s.seen = make([]int32, n)
		s.epoch = 0
	}
	if s.epoch == math.MaxInt32 { // stamp wrap: start over
		for i := range s.seen {
			s.seen[i] = 0
		}
		s.epoch = 0
	}
	s.epoch++
	s.queue.Reset()
	return s.seen, s.epoch
}

// CountPathsInto runs the signed path-counting BFS (Algorithm 1) from
// src, writing the result into res and using scratch for all transient
// state. res's slices are reused when large enough and reallocated
// otherwise, so a warm (res, scratch) pair makes the call free of heap
// allocations. It returns res for convenience.
//
//tfsn:noalloc
func CountPathsInto(g *sgraph.Graph, src sgraph.NodeID, res *Result, scratch *Scratch) *Result {
	n := g.NumNodes()
	res.Source = src
	res.SaturatedAt = false
	res.Dist = resizeInt32(res.Dist, n)
	res.Pos = resizeUint64(res.Pos, n)
	res.Neg = resizeUint64(res.Neg, n)

	seen, epoch := scratch.begin(n)
	q := &scratch.queue

	res.Dist[src] = 0
	res.Pos[src] = 1
	res.Neg[src] = 0
	seen[src] = epoch
	reached := 1
	q.Push(src)
	for !q.Empty() {
		u := q.Pop()
		du := res.Dist[u]
		ids := g.NeighborIDs(u)
		signs := g.NeighborSigns(u)
		for i, v := range ids {
			if seen[v] != epoch {
				seen[v] = epoch
				res.Dist[v] = du + 1
				res.Pos[v] = 0
				res.Neg[v] = 0
				reached++
				q.Push(v)
			}
			if res.Dist[v] == du+1 {
				// v is reached via a shortest path through u: all of
				// u's shortest paths extend to v, keeping their sign
				// on a positive edge and flipping it on a negative.
				if signs[i] == sgraph.Positive {
					res.Pos[v] = res.satAdd(res.Pos[v], res.Pos[u])
					res.Neg[v] = res.satAdd(res.Neg[v], res.Neg[u])
				} else {
					res.Neg[v] = res.satAdd(res.Neg[v], res.Pos[u])
					res.Pos[v] = res.satAdd(res.Pos[v], res.Neg[u])
				}
			}
		}
	}
	if reached < n {
		// Nodes never discovered this epoch still hold the previous
		// traversal's values; restore the documented unreachable state.
		for v := range res.Dist {
			if seen[v] != epoch {
				res.Dist[v] = Unreachable
				res.Pos[v] = 0
				res.Neg[v] = 0
			}
		}
	}
	return res
}

// DistancesInto is the sign-oblivious counterpart of CountPathsInto:
// it computes single-source shortest-path lengths from src into dist,
// growing it only when too small, and returns the slice. A warm
// (dist, scratch) pair allocates nothing.
//
//tfsn:noalloc
func DistancesInto(g *sgraph.Graph, src sgraph.NodeID, dist []int32, scratch *Scratch) []int32 {
	n := g.NumNodes()
	dist = resizeInt32(dist, n)
	seen, epoch := scratch.begin(n)
	q := &scratch.queue

	dist[src] = 0
	seen[src] = epoch
	reached := 1
	q.Push(src)
	for !q.Empty() {
		u := q.Pop()
		du := dist[u]
		for _, v := range g.NeighborIDs(u) {
			if seen[v] != epoch {
				seen[v] = epoch
				dist[v] = du + 1
				reached++
				q.Push(v)
			}
		}
	}
	if reached < n {
		for v := range dist {
			if seen[v] != epoch {
				dist[v] = Unreachable
			}
		}
	}
	return dist
}

func resizeInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func resizeUint64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}
