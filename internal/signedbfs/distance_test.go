package signedbfs

import (
	"math/rand"
	"testing"

	"repro/internal/sgraph"
)

func pathGraph(n int) *sgraph.Graph {
	b := sgraph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(sgraph.NodeID(i), sgraph.NodeID(i+1), sgraph.Positive)
	}
	return b.MustBuild()
}

func randomGraph(rng *rand.Rand, n, m int, negFrac float64) *sgraph.Graph {
	b := sgraph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u, v := sgraph.NodeID(rng.Intn(n)), sgraph.NodeID(rng.Intn(n))
		if u == v || b.HasEdge(u, v) {
			continue
		}
		s := sgraph.Positive
		if rng.Float64() < negFrac {
			s = sgraph.Negative
		}
		b.AddEdge(u, v, s)
	}
	return b.MustBuild()
}

func TestDistancesPathGraph(t *testing.T) {
	g := pathGraph(6)
	dist := Distances(g, 0)
	for i := 0; i < 6; i++ {
		if dist[i] != int32(i) {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], i)
		}
	}
	dist = Distances(g, 3)
	want := []int32{3, 2, 1, 0, 1, 2}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], want[i])
		}
	}
}

func TestDistancesIgnoreSign(t *testing.T) {
	// Signs must not affect plain distances.
	g := sgraph.MustFromEdges(3, []sgraph.Edge{
		{U: 0, V: 1, Sign: sgraph.Negative},
		{U: 1, V: 2, Sign: sgraph.Negative},
	})
	dist := Distances(g, 0)
	if dist[2] != 2 {
		t.Fatalf("dist[2] = %d, want 2", dist[2])
	}
}

// floydWarshall computes all-pairs distances for cross-checking.
func floydWarshall(g *sgraph.Graph) [][]int32 {
	n := g.NumNodes()
	const inf = int32(1 << 29)
	d := make([][]int32, n)
	for i := range d {
		d[i] = make([]int32, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = inf
			}
		}
	}
	for _, e := range g.Edges() {
		d[e.U][e.V] = 1
		d[e.V][e.U] = 1
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][k]+d[k][j] < d[i][j] {
					d[i][j] = d[i][k] + d[k][j]
				}
			}
		}
	}
	return d
}

func TestDistancesMatchFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, 4+rng.Intn(20), 30, 0.3)
		fw := floydWarshall(g)
		for s := 0; s < g.NumNodes(); s++ {
			dist := Distances(g, sgraph.NodeID(s))
			for v := 0; v < g.NumNodes(); v++ {
				want := fw[s][v]
				if want >= 1<<29 {
					want = Unreachable
				}
				if dist[v] != want {
					t.Fatalf("trial %d: dist(%d,%d) = %d, want %d", trial, s, v, dist[v], want)
				}
			}
		}
	}
}

func TestEccentricityAndDiameterPath(t *testing.T) {
	g := pathGraph(10)
	if e := Eccentricity(g, 0); e != 9 {
		t.Fatalf("ecc(0) = %d, want 9", e)
	}
	if e := Eccentricity(g, 5); e != 5 {
		t.Fatalf("ecc(5) = %d, want 5", e)
	}
	if d := Diameter(g); d != 9 {
		t.Fatalf("diameter = %d, want 9", d)
	}
}

func TestDiameterMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 15; trial++ {
		g := randomGraph(rng, 5+rng.Intn(40), 80, 0.2)
		fw := floydWarshall(g)
		want := int32(0)
		for i := range fw {
			for j := range fw[i] {
				if fw[i][j] < 1<<29 && fw[i][j] > want {
					want = fw[i][j]
				}
			}
		}
		if got := Diameter(g); got != want {
			t.Fatalf("trial %d: Diameter = %d, want %d", trial, got, want)
		}
	}
}

func TestDiameterEmptyAndSingle(t *testing.T) {
	if d := Diameter(sgraph.NewBuilder(0).MustBuild()); d != 0 {
		t.Fatalf("diameter of empty graph = %d", d)
	}
	if d := Diameter(sgraph.NewBuilder(1).MustBuild()); d != 0 {
		t.Fatalf("diameter of single node = %d", d)
	}
}

func TestApproxDiameterLowerBoundsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 30+rng.Intn(50), 150, 0.2)
		exact := Diameter(g)
		starts := []sgraph.NodeID{0, sgraph.NodeID(g.NumNodes() / 2)}
		approx := ApproxDiameter(g, starts)
		if approx > exact {
			t.Fatalf("trial %d: approx %d exceeds exact %d", trial, approx, exact)
		}
		if approx < exact/2 {
			t.Fatalf("trial %d: double sweep too loose: %d vs %d", trial, approx, exact)
		}
	}
}

func TestAverageDistancePath(t *testing.T) {
	// Path 0-1-2: ordered pairs distances 1,2,1,1,2,1 → mean 8/6.
	g := pathGraph(3)
	got := AverageDistance(g)
	want := 8.0 / 6.0
	if got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("AverageDistance = %g, want %g", got, want)
	}
}

func TestAverageDistanceNoPairs(t *testing.T) {
	if got := AverageDistance(sgraph.NewBuilder(3).MustBuild()); got != 0 {
		t.Fatalf("AverageDistance = %g, want 0", got)
	}
}
