package signedteams_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	signedteams "repro"
)

func TestFormTopKFacade(t *testing.T) {
	g := signedteams.MustFromEdges(4, []signedteams.Edge{
		{U: 0, V: 1, Sign: signedteams.Positive},
		{U: 0, V: 2, Sign: signedteams.Positive},
		{U: 1, V: 3, Sign: signedteams.Positive},
		{U: 2, V: 3, Sign: signedteams.Positive},
	})
	univ, _ := signedteams.NewUniverse([]string{"a", "b"})
	assign := signedteams.NewAssignment(univ, 4)
	assign.MustAdd(1, 0)
	assign.MustAdd(2, 0)
	assign.MustAdd(3, 1)
	rel := signedteams.MustNewRelation(signedteams.NNE, g, signedteams.RelationOptions{})
	// Skill "b" is rarer (one holder), so it seeds the search and
	// there is a single seed; the task {a} has two holders and must
	// yield two distinct teams.
	teams, err := signedteams.FormTopK(rel, assign, signedteams.NewTask(0), signedteams.FormOptions{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(teams) != 2 {
		t.Fatalf("teams = %d, want 2 (two seeds, distinct teams)", len(teams))
	}
	if teams[0].Cost > teams[1].Cost {
		t.Fatal("top-k not sorted")
	}
	full, err := signedteams.FormTopK(rel, assign, signedteams.NewTask(0, 1), signedteams.FormOptions{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 1 || len(full[0].Members) != 2 {
		t.Fatalf("full task teams = %+v, want one two-member team", full)
	}
}

// TestFormTopKFacadeTelemetry covers the aggregate SeedsTried /
// SeedsSucceeded semantics through the facade: every returned team
// carries the totals of the whole search, even after slicing to k.
func TestFormTopKFacadeTelemetry(t *testing.T) {
	g := signedteams.MustFromEdges(4, []signedteams.Edge{
		{U: 0, V: 1, Sign: signedteams.Positive},
		{U: 0, V: 2, Sign: signedteams.Positive},
		{U: 1, V: 3, Sign: signedteams.Positive},
		{U: 2, V: 3, Sign: signedteams.Positive},
	})
	univ, _ := signedteams.NewUniverse([]string{"a", "b"})
	assign := signedteams.NewAssignment(univ, 4)
	assign.MustAdd(1, 0)
	assign.MustAdd(2, 0)
	assign.MustAdd(3, 1)
	rel := signedteams.MustNewRelation(signedteams.NNE, g, signedteams.RelationOptions{})
	// Task {a}: two seeds, two distinct single-member teams; k=1 slices
	// the list but must keep the 2/2 aggregate on the survivor.
	teams, err := signedteams.FormTopK(rel, assign, signedteams.NewTask(0), signedteams.FormOptions{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(teams) != 1 {
		t.Fatalf("teams = %d, want 1", len(teams))
	}
	if teams[0].SeedsTried != 2 || teams[0].SeedsSucceeded != 2 {
		t.Fatalf("telemetry = %d/%d, want aggregate 2/2", teams[0].SeedsSucceeded, teams[0].SeedsTried)
	}
}

// TestConstraintsFacade: the constrained-formation and diverse-top-k
// vocabulary is reachable through the public API — constraints ride
// FormOptions into FormTeam, contradictions surface as
// ErrInfeasibleTeam (which wraps ErrNoTeam), and FormTopKDiverse at
// lambda 0 reproduces FormTopK exactly.
func TestConstraintsFacade(t *testing.T) {
	g := signedteams.MustFromEdges(4, []signedteams.Edge{
		{U: 0, V: 1, Sign: signedteams.Positive},
		{U: 0, V: 2, Sign: signedteams.Positive},
		{U: 1, V: 3, Sign: signedteams.Positive},
		{U: 2, V: 3, Sign: signedteams.Positive},
	})
	univ, _ := signedteams.NewUniverse([]string{"a", "b"})
	assign := signedteams.NewAssignment(univ, 4)
	assign.MustAdd(1, 0)
	assign.MustAdd(2, 0)
	assign.MustAdd(3, 1)
	rel := signedteams.MustNewRelation(signedteams.NNE, g, signedteams.RelationOptions{})
	task := signedteams.NewTask(0, 1)

	tm, err := signedteams.FormTeam(rel, assign, task, signedteams.FormOptions{
		Constraints: signedteams.TeamConstraints{
			MustExclude: []signedteams.NodeID{1},
			MaxTeamSize: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range tm.Members {
		if m == 1 {
			t.Fatalf("excluded user 1 in %v", tm.Members)
		}
	}
	if len(tm.Members) > 2 {
		t.Fatalf("cap ignored: %v", tm.Members)
	}

	_, err = signedteams.FormTeam(rel, assign, task, signedteams.FormOptions{
		Constraints: signedteams.TeamConstraints{MustExclude: []signedteams.NodeID{1, 2}},
	})
	if !errors.Is(err, signedteams.ErrInfeasibleTeam) || !errors.Is(err, signedteams.ErrNoTeam) {
		t.Fatalf("excluding every holder of a: err = %v, want ErrInfeasibleTeam wrapping ErrNoTeam", err)
	}

	plain, err := signedteams.FormTopK(rel, assign, task, signedteams.FormOptions{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	diverse, err := signedteams.FormTopKDiverse(rel, assign, task, signedteams.FormOptions{}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(diverse) {
		t.Fatalf("lambda=0 diverse returned %d teams, FormTopK %d", len(diverse), len(plain))
	}
	for i := range plain {
		if fmt.Sprint(plain[i].Members) != fmt.Sprint(diverse[i].Members) || plain[i].Cost != diverse[i].Cost {
			t.Fatalf("lambda=0 team %d: diverse %+v, plain %+v", i, diverse[i], plain[i])
		}
	}
	if _, err := signedteams.FormTopKDiverse(rel, assign, task, signedteams.FormOptions{}, 3, -1); err == nil {
		t.Fatal("negative lambda accepted")
	}
}

// TestTeamSolverFacade: the reusable solver must agree with per-call
// FormTeam through the public API, across engines and worker counts.
func TestTeamSolverFacade(t *testing.T) {
	d, err := signedteams.LoadDataset("slashdot", 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var tasks []signedteams.Task
	for i := 0; i < 6; i++ {
		task, err := signedteams.RandomTask(rng, d.Assign, 3)
		if err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, task)
	}
	lazy := signedteams.MustNewRelation(signedteams.SPO, d.Graph, signedteams.RelationOptions{})
	packed, err := signedteams.NewMatrixRelation(signedteams.SPO, d.Graph, signedteams.MatrixRelationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opts := signedteams.FormOptions{
		Skill: signedteams.LeastCompatibleFirst,
		User:  signedteams.MinDistance,
	}
	for _, rel := range []signedteams.Relation{lazy, packed} {
		solver := signedteams.NewTeamSolver(rel, d.Assign, signedteams.TeamSolverOptions{Workers: 3})
		batch, err := solver.FormBatch(tasks, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i, task := range tasks {
			want, wantErr := signedteams.FormTeam(rel, d.Assign, task, opts)
			if wantErr != nil {
				if batch[i] != nil {
					t.Fatalf("task %d: batch found a team, FormTeam did not", i)
				}
				continue
			}
			if batch[i] == nil || batch[i].Cost != want.Cost || len(batch[i].Members) != len(want.Members) {
				t.Fatalf("task %d: batch %+v vs FormTeam %+v", i, batch[i], want)
			}
			// The batch team prices identically under TeamCostWith.
			cost, err := signedteams.TeamCostWith(rel, batch[i].Members, signedteams.DiameterCost)
			if err != nil || cost != want.Cost {
				t.Fatalf("task %d: re-priced cost %d,%v vs %d", i, cost, err, want.Cost)
			}
		}
	}
}

func TestTeamCostWithFacade(t *testing.T) {
	g := signedteams.MustFromEdges(3, []signedteams.Edge{
		{U: 0, V: 1, Sign: signedteams.Positive},
		{U: 1, V: 2, Sign: signedteams.Positive},
	})
	rel := signedteams.MustNewRelation(signedteams.NNE, g, signedteams.RelationOptions{})
	members := []signedteams.NodeID{0, 1, 2}
	diam, err := signedteams.TeamCostWith(rel, members, signedteams.DiameterCost)
	if err != nil || diam != 2 {
		t.Fatalf("diameter = %d,%v", diam, err)
	}
	sum, err := signedteams.TeamCostWith(rel, members, signedteams.SumDistanceCost)
	if err != nil || sum != 4 { // 1+2+1
		t.Fatalf("sum = %d,%v", sum, err)
	}
}

func TestSignPredictionFacade(t *testing.T) {
	d, err := signedteams.LoadDataset("slashdot", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	results, err := signedteams.EvaluateSignPrediction(d.Graph, rand.New(rand.NewSource(1)), 0.2, signedteams.PredictMethods())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Test == 0 {
			t.Fatalf("%v: empty test set", r.Method)
		}
		if r.Accuracy() < 0 || r.Accuracy() > 1 || r.Coverage() < 0 || r.Coverage() > 1 {
			t.Fatalf("%v: out-of-range metrics %+v", r.Method, r)
		}
	}
	p, err := signedteams.NewSignPredictor(d.Graph, signedteams.PredictCamps)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Predict(0, 1); !ok {
		t.Fatal("camps predictor abstained")
	}
}

func TestMatrixFacade(t *testing.T) {
	d, err := signedteams.LoadDataset("slashdot", 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	rel := signedteams.MustNewRelation(signedteams.SPO, d.Graph, signedteams.RelationOptions{CacheCap: 256})
	m, err := signedteams.BuildMatrix(rel, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The matrix is itself a Relation: team formation runs on it.
	univ := d.Assign.Universe()
	_ = univ
	task, err := signedteams.RandomTask(rand.New(rand.NewSource(1)), d.Assign, 3)
	if err != nil {
		t.Fatal(err)
	}
	t1, err1 := signedteams.FormTeam(rel, d.Assign, task, signedteams.FormOptions{})
	t2, err2 := signedteams.FormTeam(m, d.Assign, task, signedteams.FormOptions{})
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("live vs matrix feasibility differ: %v / %v", err1, err2)
	}
	if err1 == nil && t1.Cost != t2.Cost {
		t.Fatalf("live cost %d vs matrix cost %d", t1.Cost, t2.Cost)
	}
	// Snapshot round trip through the facade.
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := signedteams.ReadMatrix(&buf, d.Graph)
	if err != nil {
		t.Fatal(err)
	}
	ok1, _ := m.Compatible(0, 1)
	ok2, _ := m2.Compatible(0, 1)
	if ok1 != ok2 {
		t.Fatal("snapshot changed answers")
	}
}

func TestClusteringFacade(t *testing.T) {
	d, err := signedteams.LoadDataset("slashdot", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := d.Graph
	two, bad := signedteams.TwoFactions(g)
	if two.NumClusters != 2 {
		t.Fatalf("clusters = %d", two.NumClusters)
	}
	if bad < 0 || bad > g.NumEdges() {
		t.Fatalf("disagreements = %d", bad)
	}
	pivot := signedteams.PivotCC(g, rand.New(rand.NewSource(5)))
	before, err := signedteams.ClusterDisagreements(g, pivot)
	if err != nil {
		t.Fatal(err)
	}
	refined, after, err := signedteams.ClusterLocalSearch(g, pivot, 4)
	if err != nil {
		t.Fatal(err)
	}
	if after > before {
		t.Fatalf("local search worsened %d → %d", before, after)
	}
	if agr, err := signedteams.ClusterAgreement(two, refined); err != nil || agr < 0 || agr > 1 {
		t.Fatalf("agreement = %v,%v", agr, err)
	}
}
