// The root package API: graph construction, compatibility relations
// (all three engines) and team formation. Package documentation lives
// in doc.go.

package signedteams

import (
	"io"

	"repro/internal/compat"
	"repro/internal/sgraph"
)

// Core signed-graph types. These are aliases of the implementation
// types, so values flow freely between the public API and the
// internal algorithm packages.
type (
	// Graph is an immutable undirected signed graph in CSR form.
	Graph = sgraph.Graph
	// Builder accumulates signed edges and produces a Graph.
	Builder = sgraph.Builder
	// NodeID identifies a node: dense integers in [0, NumNodes).
	NodeID = sgraph.NodeID
	// Sign is an edge label: Positive or Negative.
	Sign = sgraph.Sign
	// Edge is an undirected signed edge.
	Edge = sgraph.Edge
)

// Edge sign values.
const (
	Positive = sgraph.Positive
	Negative = sgraph.Negative
)

// NewBuilder returns a builder for a signed graph with n nodes.
func NewBuilder(n int) *Builder { return sgraph.NewBuilder(n) }

// FromEdges builds a graph with n nodes from an edge list.
func FromEdges(n int, edges []Edge) (*Graph, error) { return sgraph.FromEdges(n, edges) }

// MustFromEdges is FromEdges that panics on error.
func MustFromEdges(n int, edges []Edge) *Graph { return sgraph.MustFromEdges(n, edges) }

// ReadEdgeList parses a SNAP-style signed edge list ("u v ±1" rows).
// It returns the graph and the original node ids, remapped to [0, n).
func ReadEdgeList(r io.Reader) (*Graph, []int64, error) { return sgraph.ReadEdgeList(r) }

// WriteEdgeList writes g in the format ReadEdgeList parses.
func WriteEdgeList(w io.Writer, g *Graph, origIDs []int64) error {
	return sgraph.WriteEdgeList(w, g, origIDs)
}

// Compatibility relations.
type (
	// Relation answers Compatible(u,v) and Distance(u,v) queries on a
	// fixed signed graph. Implementations are concurrency-safe.
	Relation = compat.Relation
	// RelationKind enumerates the seven compatibility relations.
	RelationKind = compat.Kind
	// RelationOptions tunes relation construction (SBPH beam width,
	// exact-SBP budgets, row-cache capacity).
	RelationOptions = compat.Options
	// RelationStats aggregates compatible-pair fractions and average
	// distances, as in the paper's Table 2. On a prefetching sharded
	// relation it also snapshots the PrefetchStats counters at the end
	// of the scan.
	RelationStats = compat.Stats
	// PrefetchStats counts the sharded engine's async shard
	// prefetcher: background reloads issued, adopted by demand queries
	// (hits) and discarded unused (wasted).
	PrefetchStats = compat.PrefetchStats
	// StatsOptions controls ComputeRelationStats.
	StatsOptions = compat.StatsOptions
	// SkillMatrix records which skill pairs have compatible holders.
	SkillMatrix = compat.SkillMatrix
)

// The compatibility relations, strictest to most relaxed
// (Proposition 3.5 of the paper): direct positive edge; all shortest
// paths positive; majority of shortest paths positive; one shortest
// path positive; heuristic structurally-balanced-path; exact
// structurally-balanced-path; no negative edge.
const (
	DPE  = compat.DPE
	SPA  = compat.SPA
	SPM  = compat.SPM
	SPO  = compat.SPO
	SBPH = compat.SBPH
	SBP  = compat.SBP
	NNE  = compat.NNE
)

// RelationKinds lists all relations in containment order.
func RelationKinds() []RelationKind { return compat.Kinds() }

// ParseRelationKind resolves a case-insensitive relation name
// ("SPA", "nne", ...).
func ParseRelationKind(name string) (RelationKind, error) { return compat.ParseKind(name) }

// NewRelation constructs the relation of the given kind over g.
func NewRelation(kind RelationKind, g *Graph, opts RelationOptions) (Relation, error) {
	return compat.New(kind, g, opts)
}

// MustNewRelation is NewRelation that panics on error.
func MustNewRelation(kind RelationKind, g *Graph, opts RelationOptions) Relation {
	return compat.MustNew(kind, g, opts)
}

// MatrixRelationOptions tunes NewMatrixRelation (relation parameters
// plus build parallelism).
type MatrixRelationOptions = compat.MatrixOptions

// NewMatrixRelation precomputes the packed all-pairs engine for the
// given relation kind: one bit per node pair plus a packed distance
// matrix, built in parallel. The result implements Relation, answers
// point queries without ever erroring, and makes batch team formation
// and all-pairs statistics run on word-level operations. Memory is
// Θ(n²) bits + bytes, so prefer the lazy NewRelation on very large
// graphs.
func NewMatrixRelation(kind RelationKind, g *Graph, opts MatrixRelationOptions) (Relation, error) {
	m, err := compat.NewMatrix(kind, g, opts)
	if err != nil {
		// Return a true nil interface, not a typed-nil *CompatMatrix.
		return nil, err
	}
	return m, nil
}

// ShardedRelationOptions tunes NewShardedRelation: the relation
// parameters plus build parallelism, shard height (ShardRows), the
// resident-shard bound (MaxResidentShards) that triggers disk spill,
// async next-shard prefetching for sequential sweeps (Prefetch) and
// the spill read backend (DisableMmap forces the portable ReadAt path
// instead of the memory-mapped spill file).
type ShardedRelationOptions = compat.ShardedOptions

// ShardedRelation is the sharded packed engine returned by
// NewShardedRelation, exposed concretely so callers can reach its
// observability methods (NumShards, ResidentShards, SpillLoads,
// PrefetchStats) and Close.
type ShardedRelation = compat.ShardedMatrix

// NewShardedRelation precomputes the packed all-pairs engine in
// row shards with bounded memory: each shard is built by a worker
// pool, at most MaxResidentShards shards stay in memory behind an
// LRU, and cold shards spill to a compact temporary file that point
// queries transparently read back. The result implements Relation
// with the same word-parallel fast paths as NewMatrixRelation, so
// team formation and statistics run on it unchanged — use it when
// the full Θ(n²) matrix does not fit but packed-row speed is still
// wanted. Call Close on the result to release the spill file.
func NewShardedRelation(kind RelationKind, g *Graph, opts ShardedRelationOptions) (*ShardedRelation, error) {
	return compat.NewSharded(kind, g, opts)
}

// ComputeRelationStats measures compatible-pair fractions, average
// distances and (optionally) the skill-pair compatibility matrix for
// one relation — the measurements behind the paper's Table 2.
func ComputeRelationStats(rel Relation, opts StatsOptions) (*RelationStats, error) {
	return compat.ComputeStats(rel, opts)
}

// PrecomputeRelation fills the relation's row cache for every node in
// parallel; create the relation with RelationOptions.CacheCap ≥
// NumNodes first. Useful before all-pairs or many-task workloads.
func PrecomputeRelation(rel Relation, workers int) error {
	return compat.Precompute(rel, workers)
}
