// Package signedteams is a Go implementation of "Forming Compatible
// Teams in Signed Networks" (Kouvatis, Semertzidis, Zerva, Pitoura,
// Tsaparas — EDBT 2020).
//
// Given a social network whose edges are signed (+1 friend / −1 foe),
// the package answers two questions:
//
//  1. Compatibility — can two users work together? Seven relations of
//     increasing permissiveness are provided, built on the theory of
//     structural balance: DPE, SPA, SPM, SPO, SBPH, SBP and NNE (see
//     RelationKind).
//  2. Team formation — given a task (a set of required skills), find
//     a team that covers the skills, is pairwise compatible, and has
//     small communication cost (team diameter).
//
// # Quickstart
//
//	b := signedteams.NewBuilder(4)
//	b.AddEdge(0, 1, signedteams.Positive)
//	b.AddEdge(1, 2, signedteams.Positive)
//	b.AddEdge(0, 3, signedteams.Negative)
//	g := b.MustBuild()
//
//	rel := signedteams.MustNewRelation(signedteams.SPO, g, signedteams.RelationOptions{})
//	ok, _ := rel.Compatible(0, 2) // true: the shortest path 0→2 is positive
//
// Team formation on top of a skill assignment:
//
//	univ, _ := signedteams.NewUniverse([]string{"go", "sql"})
//	assign := signedteams.NewAssignment(univ, g.NumNodes())
//	assign.MustAdd(0, 0)
//	assign.MustAdd(2, 1)
//	team, err := signedteams.FormTeam(rel, assign, signedteams.NewTask(0, 1), signedteams.FormOptions{})
//
// The subpackages used by the paper's evaluation — synthetic dataset
// stand-ins, the experiment harness regenerating every table and
// figure — are exposed through datasets.go in this package. Everything
// is implemented on the Go standard library alone.
package signedteams

import (
	"io"

	"repro/internal/compat"
	"repro/internal/sgraph"
)

// Core signed-graph types. These are aliases of the implementation
// types, so values flow freely between the public API and the
// internal algorithm packages.
type (
	// Graph is an immutable undirected signed graph in CSR form.
	Graph = sgraph.Graph
	// Builder accumulates signed edges and produces a Graph.
	Builder = sgraph.Builder
	// NodeID identifies a node: dense integers in [0, NumNodes).
	NodeID = sgraph.NodeID
	// Sign is an edge label: Positive or Negative.
	Sign = sgraph.Sign
	// Edge is an undirected signed edge.
	Edge = sgraph.Edge
)

// Edge sign values.
const (
	Positive = sgraph.Positive
	Negative = sgraph.Negative
)

// NewBuilder returns a builder for a signed graph with n nodes.
func NewBuilder(n int) *Builder { return sgraph.NewBuilder(n) }

// FromEdges builds a graph with n nodes from an edge list.
func FromEdges(n int, edges []Edge) (*Graph, error) { return sgraph.FromEdges(n, edges) }

// MustFromEdges is FromEdges that panics on error.
func MustFromEdges(n int, edges []Edge) *Graph { return sgraph.MustFromEdges(n, edges) }

// ReadEdgeList parses a SNAP-style signed edge list ("u v ±1" rows).
// It returns the graph and the original node ids, remapped to [0, n).
func ReadEdgeList(r io.Reader) (*Graph, []int64, error) { return sgraph.ReadEdgeList(r) }

// WriteEdgeList writes g in the format ReadEdgeList parses.
func WriteEdgeList(w io.Writer, g *Graph, origIDs []int64) error {
	return sgraph.WriteEdgeList(w, g, origIDs)
}

// Compatibility relations.
type (
	// Relation answers Compatible(u,v) and Distance(u,v) queries on a
	// fixed signed graph. Implementations are concurrency-safe.
	Relation = compat.Relation
	// RelationKind enumerates the seven compatibility relations.
	RelationKind = compat.Kind
	// RelationOptions tunes relation construction (SBPH beam width,
	// exact-SBP budgets, row-cache capacity).
	RelationOptions = compat.Options
	// RelationStats aggregates compatible-pair fractions and average
	// distances, as in the paper's Table 2.
	RelationStats = compat.Stats
	// StatsOptions controls ComputeRelationStats.
	StatsOptions = compat.StatsOptions
	// SkillMatrix records which skill pairs have compatible holders.
	SkillMatrix = compat.SkillMatrix
)

// The compatibility relations, strictest to most relaxed
// (Proposition 3.5 of the paper): direct positive edge; all shortest
// paths positive; majority of shortest paths positive; one shortest
// path positive; heuristic structurally-balanced-path; exact
// structurally-balanced-path; no negative edge.
const (
	DPE  = compat.DPE
	SPA  = compat.SPA
	SPM  = compat.SPM
	SPO  = compat.SPO
	SBPH = compat.SBPH
	SBP  = compat.SBP
	NNE  = compat.NNE
)

// RelationKinds lists all relations in containment order.
func RelationKinds() []RelationKind { return compat.Kinds() }

// ParseRelationKind resolves a case-insensitive relation name
// ("SPA", "nne", ...).
func ParseRelationKind(name string) (RelationKind, error) { return compat.ParseKind(name) }

// NewRelation constructs the relation of the given kind over g.
func NewRelation(kind RelationKind, g *Graph, opts RelationOptions) (Relation, error) {
	return compat.New(kind, g, opts)
}

// MustNewRelation is NewRelation that panics on error.
func MustNewRelation(kind RelationKind, g *Graph, opts RelationOptions) Relation {
	return compat.MustNew(kind, g, opts)
}

// MatrixRelationOptions tunes NewMatrixRelation (relation parameters
// plus build parallelism).
type MatrixRelationOptions = compat.MatrixOptions

// NewMatrixRelation precomputes the packed all-pairs engine for the
// given relation kind: one bit per node pair plus a packed distance
// matrix, built in parallel. The result implements Relation, answers
// point queries without ever erroring, and makes batch team formation
// and all-pairs statistics run on word-level operations. Memory is
// Θ(n²) bits + bytes, so prefer the lazy NewRelation on very large
// graphs.
func NewMatrixRelation(kind RelationKind, g *Graph, opts MatrixRelationOptions) (Relation, error) {
	m, err := compat.NewMatrix(kind, g, opts)
	if err != nil {
		// Return a true nil interface, not a typed-nil *CompatMatrix.
		return nil, err
	}
	return m, nil
}

// ComputeRelationStats measures compatible-pair fractions, average
// distances and (optionally) the skill-pair compatibility matrix for
// one relation — the measurements behind the paper's Table 2.
func ComputeRelationStats(rel Relation, opts StatsOptions) (*RelationStats, error) {
	return compat.ComputeStats(rel, opts)
}

// PrecomputeRelation fills the relation's row cache for every node in
// parallel; create the relation with RelationOptions.CacheCap ≥
// NumNodes first. Useful before all-pairs or many-task workloads.
func PrecomputeRelation(rel Relation, workers int) error {
	return compat.Precompute(rel, workers)
}
