// Package signedteams is a Go implementation of "Forming Compatible
// Teams in Signed Networks" (Kouvatis, Semertzidis, Zerva, Pitoura,
// Tsaparas — EDBT 2020).
//
// Given a social network whose edges are signed (+1 friend / −1 foe),
// the package answers two questions:
//
//  1. Compatibility — can two users work together? Seven relations of
//     increasing permissiveness are provided, built on the theory of
//     structural balance: DPE, SPA, SPM, SPO, SBPH, SBP and NNE (see
//     RelationKind).
//  2. Team formation — given a task (a set of required skills), find
//     a team that covers the skills, is pairwise compatible, and has
//     small communication cost (team diameter).
//
// # Quickstart
//
//	b := signedteams.NewBuilder(4)
//	b.AddEdge(0, 1, signedteams.Positive)
//	b.AddEdge(1, 2, signedteams.Positive)
//	b.AddEdge(0, 3, signedteams.Negative)
//	g := b.MustBuild()
//
//	rel := signedteams.MustNewRelation(signedteams.SPO, g, signedteams.RelationOptions{})
//	ok, _ := rel.Compatible(0, 2) // true: the shortest path 0→2 is positive
//
// Team formation on top of a skill assignment:
//
//	univ, _ := signedteams.NewUniverse([]string{"go", "sql"})
//	assign := signedteams.NewAssignment(univ, g.NumNodes())
//	assign.MustAdd(0, 0)
//	assign.MustAdd(2, 1)
//	team, err := signedteams.FormTeam(rel, assign, signedteams.NewTask(0, 1), signedteams.FormOptions{})
//
// # Choosing a relation engine
//
// Three engines implement the Relation interface; they agree answer
// for answer and differ only in how rows are computed and stored:
//
//   - NewRelation (lazy): rows are computed on demand by a signed BFS
//     and held in a bounded cache. No precomputation, O(cache) memory.
//     The default, and the only choice for very large graphs or
//     single-task workloads.
//   - NewMatrixRelation (matrix): the whole relation is packed up
//     front into bitset rows plus a distance matrix — Θ(n²) bits +
//     bytes resident — and batch team formation runs on word-parallel
//     AND/popcount operations, ~3–4× faster at bench scale. For
//     all-pairs statistics and repeated-task serving at moderate n.
//   - NewShardedRelation (sharded): the same packed rows partitioned
//     into row shards with at most MaxResidentShards in memory and
//     cold shards spilled to a temporary file. Packed-row speed with
//     bounded resident memory, for graphs whose full matrix does not
//     fit. Remember to Close it.
//
// ComputeRelationStats measures the symmetrised relation the
// Relation interface exposes on every engine — including SBPH, whose
// directed lazy rows are scanned over their canonical upper triangle;
// the directed heuristic measurement remains available through
// StatsOptions.DirectedSBPH. See RelationStats.
//
// The subpackages used by the paper's evaluation — synthetic dataset
// stand-ins, the experiment harness regenerating every table and
// figure — are exposed through datasets.go in this package. Everything
// is implemented on the Go standard library alone.
package signedteams
