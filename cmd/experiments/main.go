// Command experiments regenerates the paper's tables and figures on
// the synthetic dataset stand-ins.
//
// Usage:
//
//	experiments -all                     # everything (minutes)
//	experiments -table 2 -dataset slashdot
//	experiments -figure 2a -tasks 50
//	experiments -figure policies
//
// Output is aligned text by default; -markdown switches to Markdown
// tables (as pasted into EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cliflags"
	"repro/internal/experiments"
	"repro/internal/texttable"
)

func main() {
	var (
		table             = flag.String("table", "", "regenerate a table: 1, 2 or 3")
		figure            = flag.String("figure", "", "regenerate a figure: 2a, 2b, 2c, 2d or policies")
		all               = flag.Bool("all", false, "regenerate every table and figure")
		dataset           = flag.String("dataset", "", "restrict tables 1/2 to one dataset (slashdot, epinions, wikipedia)")
		seed              = flag.Int64("seed", 1, "seed for datasets, tasks and RANDOM")
		scale             = flag.Float64("scale", 0, "dataset scale (0 = defaults: epinions 0.1, wikipedia 0.2)")
		tasks             = flag.Int("tasks", 50, "random tasks per experiment point")
		taskSize          = flag.Int("tasksize", 5, "task size for table 3 and figures 2a/2b")
		sample            = flag.Int("sample", 0, "table 2: sample this many source nodes (0 = exact)")
		maxSeeds          = flag.Int("maxseeds", 0, "cap Algorithm 2 seeds (0 = all)")
		workers           = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		engine            = flag.String("engine", "lazy", "relation engine: lazy (cached rows, on demand), matrix (packed all-pairs precompute) or sharded (packed rows in spillable shards)")
		shardRows         = flag.Int("shard-rows", 0, "sharded engine: rows per shard (0 = default)")
		maxResidentShards = flag.Int("max-resident-shards", 0, "sharded engine: shards kept in memory, rest spilled to disk (0 = all resident)")
		prefetch          = flag.Bool("prefetch", false, "sharded engine: async-prefetch the next shard during sequential sweeps")
		mmapSpill         = flag.Bool("mmap-spill", true, "sharded engine: serve spill reloads from a read-only mmap of the spill file (false = portable read-back)")
		markdown          = flag.Bool("markdown", false, "emit Markdown tables")
		reps              = flag.Int("reps", 1, "repetitions with consecutive seeds for -figure 2a / -table 3 (mean ± std)")
	)
	flag.Parse()

	// The sharded-engine knobs silently doing nothing under another
	// engine has bitten before: reject the combination outright (the
	// flag vocabulary is shared with cmd/tfsn via internal/cliflags).
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := cliflags.ValidateEngine(*engine, set); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		flag.Usage()
		os.Exit(2)
	}

	cfg := experiments.Config{
		Seed:              *seed,
		Scale:             *scale,
		Tasks:             *tasks,
		TaskSize:          *taskSize,
		SampleSources:     *sample,
		MaxSeeds:          *maxSeeds,
		Workers:           *workers,
		Dataset:           *dataset, // team formation experiments; empty = epinions
		Engine:            *engine,
		ShardRows:         *shardRows,
		MaxResidentShards: *maxResidentShards,
		Prefetch:          *prefetch,
		DisableMmap:       !*mmapSpill,
	}
	var names []string
	if *dataset != "" {
		names = []string{*dataset}
	}

	emit := func(t *texttable.Table, elapsed time.Duration) {
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.String())
		}
		// Name the engine under every table so results stay
		// attributable (the packed engines measure the symmetrised
		// SBPH relation, the lazy engine the directed heuristic).
		fmt.Printf("(engine=%s, %.1fs)\n\n", *engine, elapsed.Seconds())
	}
	runTable := func(which string) error {
		start := time.Now()
		switch which {
		case "1":
			rows, err := experiments.Table1(cfg, names)
			if err != nil {
				return err
			}
			emit(experiments.RenderTable1(rows), time.Since(start))
		case "2":
			rows, err := experiments.Table2(cfg, names)
			if err != nil {
				return err
			}
			emit(experiments.RenderTable2(rows), time.Since(start))
		case "3":
			if *reps > 1 {
				series, err := experiments.Table3Repeated(cfg, *reps)
				if err != nil {
					return err
				}
				emit(experiments.RenderSeries("Table 3 (repeated): compatible team fraction", series), time.Since(start))
				return nil
			}
			rows, err := experiments.Table3(cfg)
			if err != nil {
				return err
			}
			emit(experiments.RenderTable3(rows), time.Since(start))
		default:
			return fmt.Errorf("unknown table %q (want 1, 2 or 3)", which)
		}
		return nil
	}
	runFigure := func(which string) error {
		start := time.Now()
		switch strings.ToLower(which) {
		case "2a", "2b":
			if *reps > 1 && strings.ToLower(which) == "2a" {
				series, err := experiments.Figure2aRepeated(cfg, *reps)
				if err != nil {
					return err
				}
				emit(experiments.RenderSeries("Figure 2(a) (repeated): solved fraction", series), time.Since(start))
				return nil
			}
			results, err := experiments.Figure2ab(cfg)
			if err != nil {
				return err
			}
			if strings.ToLower(which) == "2a" {
				emit(experiments.RenderFigure2a(results), time.Since(start))
			} else {
				emit(experiments.RenderFigure2b(results), time.Since(start))
			}
		case "2c", "2d":
			results, err := experiments.Figure2cd(cfg)
			if err != nil {
				return err
			}
			if strings.ToLower(which) == "2c" {
				emit(experiments.RenderFigure2c(results), time.Since(start))
			} else {
				emit(experiments.RenderFigure2d(results), time.Since(start))
			}
		case "policies":
			results, err := experiments.PolicyGrid(cfg, nil)
			if err != nil {
				return err
			}
			emit(experiments.RenderPolicyGrid(results), time.Since(start))
		case "beam":
			rows, err := experiments.BeamAblation(cfg, nil)
			if err != nil {
				return err
			}
			emit(experiments.RenderBeamAblation(rows), time.Since(start))
		default:
			return fmt.Errorf("unknown figure %q (want 2a, 2b, 2c, 2d, policies or beam)", which)
		}
		return nil
	}

	var err error
	switch {
	case *all:
		for _, t := range []string{"1", "2", "3"} {
			if err = runTable(t); err != nil {
				break
			}
		}
		if err == nil {
			for _, f := range []string{"2a", "2b", "2c", "2d", "policies"} {
				if err = runFigure(f); err != nil {
					break
				}
			}
		}
	case *table != "":
		err = runTable(*table)
	case *figure != "":
		err = runFigure(*figure)
	default:
		fmt.Fprintln(os.Stderr, "nothing to do: pass -table, -figure or -all")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
