// Command tfsn answers team formation queries on a signed network:
// given a dataset (built-in stand-in or snapshot files), a
// compatibility relation and a task, it prints the formed team, its
// members' skills and the team diameter.
//
// Usage:
//
//	tfsn -dataset epinions -relation SPO -k 5
//	tfsn -dataset slashdot -relation SBPH -task "skill-0002,skill-0005"
//	tfsn -edges g.edges -skills g.skills -relation NNE -k 3
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/compat"
	"repro/internal/datasets"
	"repro/internal/sgraph"
	"repro/internal/skills"
	"repro/internal/team"
)

func main() {
	var (
		dataset   = flag.String("dataset", "", "built-in dataset: slashdot, epinions or wikipedia")
		edgesPath = flag.String("edges", "", "signed edge list file (with -skills, instead of -dataset)")
		skillsTSV = flag.String("skills", "", "skill assignment TSV file")
		seed      = flag.Int64("seed", 1, "dataset / task sampling seed")
		scale     = flag.Float64("scale", 0, "built-in dataset scale (0 = default)")
		relation  = flag.String("relation", "SPO", "compatibility relation: DPE, SPA, SPM, SPO, SBPH, SBP, NNE")
		taskSpec  = flag.String("task", "", "comma-separated skill names for the task")
		k         = flag.Int("k", 0, "instead of -task: sample a random task of k skills")
		skillPol  = flag.String("skill-policy", "leastcompatible", "skill policy: rarest or leastcompatible")
		userPol   = flag.String("user-policy", "mindistance", "user policy: mindistance, mostcompatible or random")
		costKind  = flag.String("cost", "diameter", "cost objective: diameter or sumdistance")
		topk      = flag.Int("topk", 1, "return up to this many distinct teams")
		maxSeeds  = flag.Int("maxseeds", 0, "cap Algorithm 2 seeds (0 = all)")
	)
	flag.Parse()
	if err := run(*dataset, *edgesPath, *skillsTSV, *seed, *scale, *relation, *taskSpec, *k, *skillPol, *userPol, *costKind, *topk, *maxSeeds); err != nil {
		fmt.Fprintln(os.Stderr, "tfsn:", err)
		os.Exit(1)
	}
}

func run(dataset, edgesPath, skillsTSV string, seed int64, scale float64, relation, taskSpec string, k int, skillPol, userPol, costKind string, topk, maxSeeds int) error {
	d, err := loadData(dataset, edgesPath, skillsTSV, seed, scale)
	if err != nil {
		return err
	}
	kind, err := compat.ParseKind(relation)
	if err != nil {
		return err
	}
	rel, err := compat.New(kind, d.Graph, compat.Options{})
	if err != nil {
		return err
	}
	task, err := resolveTask(d.Assign, taskSpec, k, seed)
	if err != nil {
		return err
	}
	opts, err := parsePolicies(skillPol, userPol, seed)
	if err != nil {
		return err
	}
	opts.MaxSeeds = maxSeeds
	switch strings.ToLower(costKind) {
	case "diameter":
		opts.Cost = team.Diameter
	case "sumdistance", "sum":
		opts.Cost = team.SumDistance
	default:
		return fmt.Errorf("unknown cost %q (want diameter or sumdistance)", costKind)
	}
	if topk <= 0 {
		return fmt.Errorf("-topk must be positive, got %d", topk)
	}

	fmt.Printf("dataset  %s (%d users, %d edges, %d negative)\n",
		d.Name, d.Graph.NumNodes(), d.Graph.NumEdges(), d.Graph.NumNegativeEdges())
	names := make([]string, len(task))
	for i, s := range task {
		names[i] = d.Assign.Universe().Name(s)
	}
	fmt.Printf("task     {%s}\n", strings.Join(names, ", "))
	fmt.Printf("relation %v, policies %v/%v, cost %v\n\n", kind, opts.Skill, opts.User, opts.Cost)

	teams, err := team.FormTopK(rel, d.Assign, task, opts, topk)
	if errors.Is(err, team.ErrNoTeam) {
		fmt.Println("no compatible team exists for this task under", kind)
		return nil
	}
	if err != nil {
		return err
	}
	for rank, tm := range teams {
		if topk > 1 {
			fmt.Printf("#%d ", rank+1)
		}
		fmt.Printf("team of %d (%v %d; %d/%d seeds succeeded):\n",
			len(tm.Members), opts.Cost, tm.Cost, tm.SeedsSucceeded, tm.SeedsTried)
		for _, m := range tm.Members {
			var covers []string
			for _, s := range d.Assign.UserSkills(m) {
				if task.Contains(s) {
					covers = append(covers, d.Assign.Universe().Name(s))
				}
			}
			fmt.Printf("  user %-6d covers %s\n", m, strings.Join(covers, ", "))
		}
	}
	return nil
}

func loadData(dataset, edgesPath, skillsTSV string, seed int64, scale float64) (*datasets.Dataset, error) {
	switch {
	case dataset != "" && edgesPath != "":
		return nil, errors.New("pass either -dataset or -edges/-skills, not both")
	case dataset != "":
		return datasets.Load(dataset, seed, scale)
	case edgesPath != "" && skillsTSV != "":
		ef, err := os.Open(edgesPath)
		if err != nil {
			return nil, err
		}
		defer ef.Close()
		g, _, err := sgraph.ReadEdgeList(ef)
		if err != nil {
			return nil, err
		}
		sf, err := os.Open(skillsTSV)
		if err != nil {
			return nil, err
		}
		defer sf.Close()
		assign, err := skills.ReadTSV(sf, g.NumNodes())
		if err != nil {
			return nil, err
		}
		return &datasets.Dataset{Name: edgesPath, Graph: g, Assign: assign}, nil
	default:
		return nil, errors.New("pass -dataset, or -edges together with -skills")
	}
}

func resolveTask(assign *skills.Assignment, taskSpec string, k int, seed int64) (skills.Task, error) {
	if taskSpec != "" {
		var ids []skills.SkillID
		for _, name := range strings.Split(taskSpec, ",") {
			s, ok := assign.Universe().Lookup(strings.TrimSpace(name))
			if !ok {
				return nil, fmt.Errorf("unknown skill %q", name)
			}
			ids = append(ids, s)
		}
		return skills.NewTask(ids...), nil
	}
	if k > 0 {
		return skills.RandomTask(rand.New(rand.NewSource(seed)), assign, k)
	}
	return nil, errors.New("pass -task or -k")
}

func parsePolicies(skillPol, userPol string, seed int64) (team.Options, error) {
	var opts team.Options
	switch strings.ToLower(skillPol) {
	case "rarest":
		opts.Skill = team.RarestFirst
	case "leastcompatible", "lc":
		opts.Skill = team.LeastCompatibleFirst
	default:
		return opts, fmt.Errorf("unknown skill policy %q", skillPol)
	}
	switch strings.ToLower(userPol) {
	case "mindistance", "md":
		opts.User = team.MinDistance
	case "mostcompatible", "mc":
		opts.User = team.MostCompatible
	case "random":
		opts.User = team.RandomUser
		opts.Rng = rand.New(rand.NewSource(seed))
	default:
		return opts, fmt.Errorf("unknown user policy %q", userPol)
	}
	return opts, nil
}
