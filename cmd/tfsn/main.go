// Command tfsn answers team formation queries on a signed network:
// given a dataset (built-in stand-in or snapshot files), a
// compatibility relation and a task, it prints the formed team, its
// members' skills and the team diameter.
//
// The serving-oriented knobs mirror the experiment harness: -engine
// selects the relation backend (lazy row cache, packed matrix, or the
// sharded spill-capable matrix), -parallel bounds the solver's worker
// pool, -batch switches to batch mode — sample many random tasks and
// solve them all through one reusable solver, reporting solved
// fraction, average cost and throughput — and -plan-cache bounds the
// solver's compiled-plan LRU, whose hit/miss/eviction counters the
// batch report prints (repeated tasks are served without recompiling
// their plans). -mutate applies a comma-separated list of edge
// mutations (op:u:v[:sign], e.g. flip:1:2,add:3:4:-) after the engine
// is built and before solving — a what-if probe of how a team changes
// when relationships do. Constrained formation rides on
// -include/-exclude/-max-team (comma-separated user ids and a size
// cap, applied to every task in batch mode too); -diverse-lambda
// switches -topk to the overlap-penalised diverse selection
// (cost + lambda×Jaccard against the already-selected teams).
//
// Usage:
//
//	tfsn -dataset epinions -relation SPO -k 5
//	tfsn -dataset epinions -relation SPO -k 5 -include 17,42 -exclude 9 -max-team 6
//	tfsn -dataset epinions -relation SPO -k 5 -topk 3 -diverse-lambda 2.5
//	tfsn -dataset slashdot -relation SBPH -task "skill-0002,skill-0005"
//	tfsn -edges g.edges -skills g.skills -relation NNE -k 3
//	tfsn -dataset epinions -relation SPM -engine matrix -k 5 \
//	    -batch 200 -parallel 8 -plan-cache 256
//	tfsn -dataset epinions -relation SPO -k 5 -mutate flip:17:42
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/cliflags"
	"repro/internal/compat"
	"repro/internal/datasets"
	"repro/internal/sgraph"
	"repro/internal/skills"
	"repro/internal/team"
)

// config collects the parsed flags.
type config struct {
	dataset, edgesPath, skillsTSV string
	seed                          int64
	scale                         float64
	relation, taskSpec            string
	k                             int
	skillPol, userPol, costKind   string
	topk, maxSeeds                int

	eng       cliflags.Engine
	srv       cliflags.Serve // only the deadline is registered here
	cons      cliflags.ConstraintSpec
	diverseL  float64
	parallel  int
	batch     int
	planCache int
	mutate    string
}

// validateFlags rejects flag combinations that would silently do
// nothing (or contradict each other). set holds the names of flags
// explicitly present on the command line. The sharded-only flag
// vocabulary is shared with cmd/experiments via internal/cliflags.
func validateFlags(cfg config, set map[string]bool) error {
	if err := cfg.eng.Validate(set); err != nil {
		return err
	}
	if err := cfg.srv.ValidateDeadline(); err != nil {
		return err
	}
	if set["task"] && set["k"] {
		return errors.New("-task and -k are mutually exclusive: a named task has its size")
	}
	if cfg.batch > 0 {
		if cfg.taskSpec != "" {
			return errors.New("-batch samples random tasks and cannot be combined with -task; pass -k instead")
		}
		if cfg.k <= 0 {
			return errors.New("-batch needs -k (the task size to sample)")
		}
		if set["topk"] {
			return errors.New("-topk only applies to single-task mode, not -batch")
		}
		if set["diverse-lambda"] {
			return errors.New("-diverse-lambda only applies to single-task mode, not -batch")
		}
	}
	// Constraint grammar and static contradictions (a user both
	// included and excluded, a cap below the include count) are usage
	// errors; range checks against the dataset happen at solve time.
	cons, err := cfg.cons.Parse()
	if err != nil {
		return err
	}
	if err := cons.Validate(0); err != nil {
		return err
	}
	if cfg.diverseL < 0 || math.IsNaN(cfg.diverseL) {
		return fmt.Errorf("-diverse-lambda must be a finite number >= 0, got %v", cfg.diverseL)
	}
	return nil
}

func main() {
	var cfg config
	flag.StringVar(&cfg.dataset, "dataset", "", "built-in dataset: slashdot, epinions or wikipedia")
	flag.StringVar(&cfg.edgesPath, "edges", "", "signed edge list file (with -skills, instead of -dataset)")
	flag.StringVar(&cfg.skillsTSV, "skills", "", "skill assignment TSV file")
	flag.Int64Var(&cfg.seed, "seed", 1, "dataset / task sampling seed")
	flag.Float64Var(&cfg.scale, "scale", 0, "built-in dataset scale (0 = default)")
	flag.StringVar(&cfg.relation, "relation", "SPO", "compatibility relation: DPE, SPA, SPM, SPO, SBPH, SBP, NNE")
	flag.StringVar(&cfg.taskSpec, "task", "", "comma-separated skill names for the task")
	flag.IntVar(&cfg.k, "k", 0, "instead of -task: sample a random task of k skills")
	flag.StringVar(&cfg.skillPol, "skill-policy", "leastcompatible", "skill policy: rarest or leastcompatible")
	flag.StringVar(&cfg.userPol, "user-policy", "mindistance", "user policy: mindistance, mostcompatible or random")
	flag.StringVar(&cfg.costKind, "cost", "diameter", "cost objective: diameter or sumdistance")
	flag.IntVar(&cfg.topk, "topk", 1, "return up to this many distinct teams")
	flag.IntVar(&cfg.maxSeeds, "maxseeds", 0, "cap Algorithm 2 seeds (0 = all)")
	cfg.eng.Register(flag.CommandLine)
	cfg.srv.RegisterDeadline(flag.CommandLine)
	cfg.cons.Register(flag.CommandLine)
	flag.Float64Var(&cfg.diverseL, "diverse-lambda", 0, "top-k diversity: penalise member overlap with already-selected teams by lambda×Jaccard (0 = plain top-k)")
	flag.IntVar(&cfg.parallel, "parallel", 0, "solver workers for the seed loop and batch mode (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.batch, "batch", 0, "batch mode: sample this many random tasks of -k skills and solve them all")
	flag.IntVar(&cfg.planCache, "plan-cache", 0, "cache up to this many compiled task plans in the solver (0 = no cache); repeated tasks skip plan compilation")
	flag.StringVar(&cfg.mutate, "mutate", "", "comma-separated graph mutations applied after load, before solving (op:u:v[:sign], e.g. flip:1:2,add:3:4:-)")
	flag.Parse()
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := validateFlags(cfg, set); err != nil {
		fmt.Fprintln(os.Stderr, "tfsn:", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "tfsn:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	d, err := loadData(cfg)
	if err != nil {
		return err
	}
	kind, err := compat.ParseKind(cfg.relation)
	if err != nil {
		return err
	}
	relOpts := compat.Options{}
	if cfg.batch > 0 {
		// Batch mode revisits sources across tasks: let the lazy row
		// cache cover the node set instead of thrashing at the default
		// capacity. (The packed engines ignore CacheCap.)
		relOpts.CacheCap = d.Graph.NumNodes() + 1
	}
	rel, engine, err := cfg.eng.Build(kind, d.Graph, relOpts)
	if err != nil {
		return err
	}
	if c, ok := rel.(interface{ Close() error }); ok {
		defer c.Close()
	}
	if cfg.mutate != "" {
		if err := applyMutations(rel, cfg.mutate); err != nil {
			return err
		}
	}
	opts, err := parsePolicies(cfg.skillPol, cfg.userPol, cfg.seed)
	if err != nil {
		return err
	}
	opts.MaxSeeds = cfg.maxSeeds
	opts.Cost, err = cliflags.ParseCost(cfg.costKind)
	if err != nil {
		return err
	}
	// Grammar errors were rejected at exit-2 time (validateFlags); this
	// parse only reconstructs the values.
	if opts.Constraints, err = cfg.cons.Parse(); err != nil {
		return err
	}
	if cfg.topk <= 0 {
		return fmt.Errorf("-topk must be positive, got %d", cfg.topk)
	}
	ctx := context.Background()
	if cfg.srv.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.srv.Deadline)
		defer cancel()
	}

	fmt.Printf("dataset  %s (%d users, %d edges, %d negative)\n",
		d.Name, d.Graph.NumNodes(), d.Graph.NumEdges(), d.Graph.NumNegativeEdges())
	solver := team.NewSolver(rel, d.Assign, team.SolverOptions{
		Workers:   cfg.parallel,
		PlanCache: cfg.planCache,
	})
	if cfg.batch > 0 {
		// Flag-combination errors were rejected up front (validateFlags).
		return runBatch(ctx, cfg, d, rel, solver, kind, engine, opts)
	}

	task, err := resolveTask(d.Assign, cfg.taskSpec, cfg.k, cfg.seed)
	if err != nil {
		return err
	}
	names := make([]string, len(task))
	for i, s := range task {
		names[i] = d.Assign.Universe().Name(s)
	}
	fmt.Printf("task     {%s}\n", strings.Join(names, ", "))
	if !opts.Constraints.IsZero() {
		fmt.Printf("constraints %s\n", opts.Constraints.Fingerprint())
	}
	fmt.Printf("relation %v (engine=%s), policies %v/%v, cost %v\n\n", kind, engine, opts.Skill, opts.User, opts.Cost)

	var teams []*team.Team
	if cfg.diverseL > 0 {
		teams, err = solver.FormTopKDiverseContext(ctx, task, opts, cfg.topk, cfg.diverseL)
	} else {
		teams, err = solver.FormTopKContext(ctx, task, opts, cfg.topk)
	}
	if errors.Is(err, team.ErrInfeasible) {
		fmt.Println("the constraints are infeasible for this task:", err)
		return nil
	}
	if errors.Is(err, team.ErrNoTeam) {
		fmt.Println("no compatible team exists for this task under", kind)
		return nil
	}
	if errors.Is(err, team.ErrDeadlineExceeded) {
		return fmt.Errorf("deadline %v exceeded mid-solve: %w", cfg.srv.Deadline, err)
	}
	if err != nil {
		return err
	}
	for rank, tm := range teams {
		if cfg.topk > 1 {
			fmt.Printf("#%d ", rank+1)
		}
		fmt.Printf("team of %d (%v %d; %d/%d seeds succeeded):\n",
			len(tm.Members), opts.Cost, tm.Cost, tm.SeedsSucceeded, tm.SeedsTried)
		for _, m := range tm.Members {
			var covers []string
			for _, s := range d.Assign.UserSkills(m) {
				if task.Contains(s) {
					covers = append(covers, d.Assign.Universe().Name(s))
				}
			}
			fmt.Printf("  user %-6d covers %s\n", m, strings.Join(covers, ", "))
		}
	}
	return nil
}

// applyMutations parses and applies a -mutate spec against the built
// relation, printing the resulting epoch so a scripted run can assert
// on it. Only the mutable engines accept mutations.
func applyMutations(rel compat.Relation, spec string) error {
	muts, err := cliflags.ParseMutations(spec)
	if err != nil {
		return err
	}
	mr, ok := rel.(compat.MutableRelation)
	if !ok {
		return fmt.Errorf("-mutate: engine does not support mutations")
	}
	for _, mut := range muts {
		if _, err := mr.Mutate(mut); err != nil {
			return fmt.Errorf("-mutate: %w", err)
		}
	}
	st := mr.MutationStats()
	fmt.Printf("mutated  %d mutations applied, graph epoch %d, %d shards stale\n",
		st.Mutations, st.Epoch, st.StaleShards)
	return nil
}

// runBatch samples cfg.batch random tasks and solves them through the
// reusable solver, reporting aggregate quality and throughput.
func runBatch(ctx context.Context, cfg config, d *datasets.Dataset, rel compat.Relation, solver *team.Solver, kind compat.Kind, engine string, opts team.Options) error {
	rng := rand.New(rand.NewSource(cfg.seed))
	tasks := make([]skills.Task, cfg.batch)
	for i := range tasks {
		t, err := skills.RandomTask(rng, d.Assign, cfg.k)
		if err != nil {
			return err
		}
		tasks[i] = t
	}
	fmt.Printf("relation %v (engine=%s, kernels=%s), policies %v/%v, cost %v\n",
		kind, engine, compat.KernelsVariant(), opts.Skill, opts.User, opts.Cost)
	fmt.Printf("batch    %d random tasks of %d skills\n\n", cfg.batch, cfg.k)

	start := time.Now()
	teams, err := solver.FormBatchContext(ctx, tasks, opts)
	if errors.Is(err, team.ErrDeadlineExceeded) {
		return fmt.Errorf("deadline %v exceeded mid-batch: %w", cfg.srv.Deadline, err)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	solved, members, costSum := 0, 0, int64(0)
	for _, tm := range teams {
		if tm == nil {
			continue
		}
		solved++
		members += len(tm.Members)
		costSum += int64(tm.Cost)
	}
	fmt.Printf("solved   %d/%d tasks (%.1f%%)\n", solved, len(tasks), 100*float64(solved)/float64(len(tasks)))
	if solved > 0 {
		fmt.Printf("average  %v %.2f, team size %.2f\n",
			opts.Cost, float64(costSum)/float64(solved), float64(members)/float64(solved))
	}
	fmt.Printf("elapsed  %.2fs (%.0f tasks/s)\n", elapsed.Seconds(), float64(len(tasks))/elapsed.Seconds())
	if cfg.planCache > 0 {
		st := solver.PlanCacheStats()
		fmt.Printf("plans    %d cached (cap %d): %d hits / %d misses (%.1f%% hit rate), %d evictions\n",
			st.Size, st.Capacity, st.Hits, st.Misses, 100*st.HitRate(), st.Evictions)
	}
	if m, ok := rel.(*compat.ShardedMatrix); ok && cfg.eng.Prefetch {
		pf := m.PrefetchStats()
		fmt.Printf("prefetch %d issued: %d hits / %d wasted (%d spill reloads total)\n",
			pf.Issued, pf.Hits, pf.Wasted, m.SpillLoads())
	}
	return nil
}

func loadData(cfg config) (*datasets.Dataset, error) {
	switch {
	case cfg.dataset != "" && cfg.edgesPath != "":
		return nil, errors.New("pass either -dataset or -edges/-skills, not both")
	case cfg.dataset != "":
		return datasets.Load(cfg.dataset, cfg.seed, cfg.scale)
	case cfg.edgesPath != "" && cfg.skillsTSV != "":
		ef, err := os.Open(cfg.edgesPath)
		if err != nil {
			return nil, err
		}
		defer ef.Close()
		g, _, err := sgraph.ReadEdgeList(ef)
		if err != nil {
			return nil, err
		}
		sf, err := os.Open(cfg.skillsTSV)
		if err != nil {
			return nil, err
		}
		defer sf.Close()
		assign, err := skills.ReadTSV(sf, g.NumNodes())
		if err != nil {
			return nil, err
		}
		return &datasets.Dataset{Name: cfg.edgesPath, Graph: g, Assign: assign}, nil
	default:
		return nil, errors.New("pass -dataset, or -edges together with -skills")
	}
}

func resolveTask(assign *skills.Assignment, taskSpec string, k int, seed int64) (skills.Task, error) {
	if taskSpec != "" {
		var ids []skills.SkillID
		for _, name := range strings.Split(taskSpec, ",") {
			s, ok := assign.Universe().Lookup(strings.TrimSpace(name))
			if !ok {
				return nil, fmt.Errorf("unknown skill %q", name)
			}
			ids = append(ids, s)
		}
		return skills.NewTask(ids...), nil
	}
	if k > 0 {
		return skills.RandomTask(rand.New(rand.NewSource(seed)), assign, k)
	}
	return nil, errors.New("pass -task or -k")
}

func parsePolicies(skillPol, userPol string, seed int64) (team.Options, error) {
	var opts team.Options
	var err error
	if opts.Skill, err = cliflags.ParseSkillPolicy(skillPol); err != nil {
		return opts, err
	}
	if opts.User, err = cliflags.ParseUserPolicy(userPol); err != nil {
		return opts, err
	}
	if opts.User == team.RandomUser {
		opts.Rng = rand.New(rand.NewSource(seed))
	}
	return opts, nil
}
