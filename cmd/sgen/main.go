// Command sgen generates the synthetic dataset stand-ins and writes
// them as edge-list + skill TSV snapshots, or prints their Table 1
// statistics.
//
// Usage:
//
//	sgen -name epinions -seed 1 -out ./data
//	sgen -name slashdot -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datasets"
)

func main() {
	var (
		name  = flag.String("name", "slashdot", "dataset to generate: slashdot, epinions or wikipedia")
		seed  = flag.Int64("seed", 1, "generation seed")
		scale = flag.Float64("scale", 0, "dataset scale (0 = default)")
		out   = flag.String("out", "", "directory to write <name>.edges and <name>.skills into")
		stats = flag.Bool("stats", false, "print the dataset's statistics (Table 1 row)")
	)
	flag.Parse()

	d, err := datasets.Load(*name, *seed, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sgen:", err)
		os.Exit(1)
	}
	if *out == "" && !*stats {
		fmt.Fprintln(os.Stderr, "sgen: pass -out and/or -stats")
		flag.Usage()
		os.Exit(2)
	}
	if *out != "" {
		if err := d.Save(*out); err != nil {
			fmt.Fprintln(os.Stderr, "sgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s/%s.edges and %s/%s.skills\n", *out, d.Name, *out, d.Name)
	}
	if *stats {
		s := d.ComputeStats()
		fmt.Printf("dataset   %s\n", s.Name)
		fmt.Printf("users     %d\n", s.Users)
		fmt.Printf("edges     %d\n", s.Edges)
		fmt.Printf("neg edges %d (%.1f%%)\n", s.NegEdges, 100*s.NegFrac)
		fmt.Printf("diameter  %d\n", s.Diameter)
		fmt.Printf("skills    %d\n", s.Skills)
		fmt.Printf("triangles %v\n", s.Triangles)
	}
}
