// Command cmatrix materialises a compatibility relation into a dense
// matrix snapshot and answers queries from it.
//
// Build and save (expensive relations — exact SBP — pay off most):
//
//	cmatrix -dataset slashdot -relation SBP -out slashdot-sbp.cmx
//
// Inspect and query a snapshot:
//
//	cmatrix -in slashdot-sbp.cmx -info
//	cmatrix -in slashdot-sbp.cmx -query 3,17
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/balance"
	"repro/internal/compat"
	"repro/internal/datasets"
	"repro/internal/matrix"
)

func main() {
	var (
		dataset  = flag.String("dataset", "", "built-in dataset to build from: slashdot, epinions or wikipedia")
		seed     = flag.Int64("seed", 1, "dataset seed")
		scale    = flag.Float64("scale", 0, "dataset scale (0 = default)")
		relation = flag.String("relation", "SPO", "relation to materialise")
		maxLen   = flag.Int("sbp-maxlen", 14, "exact SBP path length cap (SBP only)")
		out      = flag.String("out", "", "write the snapshot to this file")
		in       = flag.String("in", "", "read a snapshot from this file instead of building")
		info     = flag.Bool("info", false, "print snapshot metadata")
		query    = flag.String("query", "", "answer one pair query, e.g. -query 3,17")
		workers  = flag.Int("workers", 0, "build parallelism (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if err := run(*dataset, *seed, *scale, *relation, *maxLen, *out, *in, *info, *query, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "cmatrix:", err)
		os.Exit(1)
	}
}

func run(dataset string, seed int64, scale float64, relation string, maxLen int, out, in string, info bool, query string, workers int) error {
	var m *matrix.Matrix
	switch {
	case in != "" && dataset != "":
		return fmt.Errorf("pass either -in or -dataset, not both")
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		m, err = matrix.Read(f, nil)
		if err != nil {
			return err
		}
	case dataset != "":
		d, err := datasets.Load(dataset, seed, scale)
		if err != nil {
			return err
		}
		kind, err := compat.ParseKind(relation)
		if err != nil {
			return err
		}
		opts := compat.Options{CacheCap: d.Graph.NumNodes() + 1}
		if kind == compat.SBP {
			opts.Exact = balance.ExactOptions{MaxLen: maxLen}
		}
		rel, err := compat.New(kind, d.Graph, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "materialising %v over %d nodes...\n", kind, d.Graph.NumNodes())
		m, err = matrix.Build(rel, workers)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("pass -dataset (build) or -in (load)")
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		n, err := m.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes, %v over %d nodes)\n", out, n, m.Kind(), m.NumNodes())
	}
	if info {
		fmt.Printf("relation %v\nnodes    %d\n", m.Kind(), m.NumNodes())
	}
	if query != "" {
		parts := strings.SplitN(query, ",", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad -query %q, want u,v", query)
		}
		u, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
		v, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad -query %q, want integer pair", query)
		}
		ok, err := m.Compatible(int32(u), int32(v))
		if err != nil {
			return err
		}
		d, defined, err := m.Distance(int32(u), int32(v))
		if err != nil {
			return err
		}
		if defined {
			fmt.Printf("compatible(%d,%d) = %v, distance = %d\n", u, v, ok, d)
		} else {
			fmt.Printf("compatible(%d,%d) = %v, distance undefined\n", u, v, ok)
		}
	}
	return nil
}
