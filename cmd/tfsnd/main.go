// Command tfsnd is the resident team-formation daemon: it builds one
// relation engine over a dataset at startup, then serves team
// formation over HTTP/JSON (internal/serve) with per-request
// deadlines, bounded admission with 429 backpressure, optional request
// coalescing, and graceful drain on SIGINT/SIGTERM.
//
// Endpoints: /form, /formtopk, /healthz, /stats, and — with
// -mutations on a mutable engine — POST /mutate for live edge
// mutations (epoch-versioned, dirty-shard invalidation). See
// internal/serve for the request lifecycle and README.md for a curl
// walkthrough.
//
// Usage:
//
//	tfsnd -dataset epinions -relation SPO -engine matrix \
//	    -plan-cache 256 -deadline 500ms -queue 128 -addr 127.0.0.1:8080
//	tfsnd -dataset wikipedia -relation SPM -engine sharded \
//	    -max-resident-shards 8 -prefetch -coalesce-wait 2ms -coalesce-batch 16
//
// On SIGTERM the daemon stops admitting (healthz flips to draining),
// finishes every admitted request within -drain-timeout, closes the
// engine, and exits 0. -addr with port 0 picks a free port and prints
// it, for harnesses.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cliflags"
	"repro/internal/compat"
	"repro/internal/datasets"
	"repro/internal/serve"
	"repro/internal/sgraph"
	"repro/internal/skills"
)

// config collects the parsed flags.
type config struct {
	dataset, edgesPath, skillsTSV string
	seed                          int64
	scale                         float64
	relation                      string
	addr                          string
	parallel                      int
	planCache                     int
	relationStats                 bool
	mutations                     bool

	eng cliflags.Engine
	srv cliflags.Serve
}

func validateFlags(cfg config, set map[string]bool) error {
	if err := cfg.eng.Validate(set); err != nil {
		return err
	}
	if err := cfg.srv.Validate(); err != nil {
		return err
	}
	if cfg.planCache < 0 {
		return fmt.Errorf("-plan-cache must be ≥ 0, got %d", cfg.planCache)
	}
	return nil
}

func main() {
	var cfg config
	flag.StringVar(&cfg.dataset, "dataset", "", "built-in dataset: slashdot, epinions or wikipedia")
	flag.StringVar(&cfg.edgesPath, "edges", "", "signed edge list file (with -skills, instead of -dataset)")
	flag.StringVar(&cfg.skillsTSV, "skills", "", "skill assignment TSV file")
	flag.Int64Var(&cfg.seed, "seed", 1, "dataset seed")
	flag.Float64Var(&cfg.scale, "scale", 0, "built-in dataset scale (0 = default)")
	flag.StringVar(&cfg.relation, "relation", "SPO", "compatibility relation: DPE, SPA, SPM, SPO, SBPH, SBP, NNE")
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	flag.IntVar(&cfg.parallel, "parallel", 0, "solver workers for coalesced batches and top-k seeds (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.planCache, "plan-cache", 256, "cache up to this many compiled task plans (0 = no cache)")
	flag.BoolVar(&cfg.relationStats, "relation-stats", false, "scan the relation at startup and surface Table 2 numbers on /stats (costs a full all-pairs sweep)")
	flag.BoolVar(&cfg.mutations, "mutations", false, "expose POST /mutate for live graph mutations (requires a mutable engine)")
	cfg.eng.Register(flag.CommandLine)
	cfg.srv.Register(flag.CommandLine)
	flag.Parse()
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := validateFlags(cfg, set); err != nil {
		fmt.Fprintln(os.Stderr, "tfsnd:", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "tfsnd:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	d, err := loadData(cfg)
	if err != nil {
		return err
	}
	kind, err := compat.ParseKind(cfg.relation)
	if err != nil {
		return err
	}
	// A resident server revisits sources across its lifetime: on the
	// lazy engine, size the row cache for the node set (the packed
	// engines ignore CacheCap).
	rel, engine, err := cfg.eng.Build(kind, d.Graph, compat.Options{CacheCap: d.Graph.NumNodes() + 1})
	if err != nil {
		return err
	}
	if cfg.mutations {
		if _, ok := rel.(compat.MutableRelation); !ok {
			return fmt.Errorf("-mutations: engine %s does not support mutations", engine)
		}
	}
	fmt.Printf("dataset  %s (%d users, %d edges, %d negative)\n",
		d.Name, d.Graph.NumNodes(), d.Graph.NumEdges(), d.Graph.NumNegativeEdges())
	fmt.Printf("relation %v (engine=%s), plan cache %d, queue %d, deadline %v\n",
		kind, engine, cfg.planCache, cfg.srv.Queue, cfg.srv.Deadline)

	var scan *compat.Stats
	if cfg.relationStats {
		scan, err = compat.ComputeStats(rel, compat.StatsOptions{Workers: cfg.parallel})
		if err != nil {
			return fmt.Errorf("startup relation scan: %w", err)
		}
		fmt.Printf("scan     %.4f compatible pairs, avg distance %.2f\n",
			scan.UserFraction(), scan.AvgDistance())
	}

	s := serve.New(rel, d.Assign, serve.Options{
		Workers:         cfg.parallel,
		PlanCache:       cfg.planCache,
		Deadline:        cfg.srv.Deadline,
		Queue:           cfg.srv.Queue,
		CoalesceWait:    cfg.srv.CoalesceWait,
		CoalesceBatch:   cfg.srv.CoalesceBatch,
		Engine:          engine,
		Relation:        scan,
		EnableMutations: cfg.mutations,
	})

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	hsrv := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hsrv.Serve(ln) }()
	// Printed after Listen succeeds, with the resolved port, so
	// harnesses launching with port 0 can parse the address.
	fmt.Printf("serving on %s\n", ln.Addr())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("received %v, draining (timeout %v)\n", sig, cfg.srv.DrainTimeout)
	case err := <-errCh:
		return fmt.Errorf("serve: %w", err)
	}

	// The drain contract (serve/doc.go): stop admission and flush
	// windows, shut the HTTP server down (drains in-flight handlers),
	// wait out background batch runners, and only then close the
	// engine. On a blown grace period the engine is NOT closed — a
	// straggler may still be touching it — and the exit is non-zero.
	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), cfg.srv.DrainTimeout)
	defer cancel()
	if err := hsrv.Shutdown(ctx); err != nil {
		s.Wait(ctx) // still cancel the root context
		return fmt.Errorf("drain: in-flight requests did not finish: %w", err)
	}
	if err := s.Wait(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if c, ok := rel.(interface{ Close() error }); ok {
		if err := c.Close(); err != nil {
			return fmt.Errorf("engine close: %w", err)
		}
	}
	fmt.Println("drained cleanly")
	return nil
}

// loadData resolves the dataset flags (the same contract as tfsn).
func loadData(cfg config) (*datasets.Dataset, error) {
	switch {
	case cfg.dataset != "" && cfg.edgesPath != "":
		return nil, errors.New("pass either -dataset or -edges/-skills, not both")
	case cfg.dataset != "":
		return datasets.Load(cfg.dataset, cfg.seed, cfg.scale)
	case cfg.edgesPath != "" && cfg.skillsTSV != "":
		ef, err := os.Open(cfg.edgesPath)
		if err != nil {
			return nil, err
		}
		defer ef.Close()
		g, _, err := sgraph.ReadEdgeList(ef)
		if err != nil {
			return nil, err
		}
		sf, err := os.Open(cfg.skillsTSV)
		if err != nil {
			return nil, err
		}
		defer sf.Close()
		assign, err := skills.ReadTSV(sf, g.NumNodes())
		if err != nil {
			return nil, err
		}
		return &datasets.Dataset{Name: cfg.edgesPath, Graph: g, Assign: assign}, nil
	default:
		return nil, errors.New("pass -dataset, or -edges together with -skills")
	}
}
