// Command tfsnvet runs the repo-specific analyzers in internal/lint
// over the named packages.
//
// Usage:
//
//	tfsnvet [-json] [-analyzers noalloc,viewlife,...] [packages]
//
// Packages default to ./... — run over the whole module: the viewlife
// and atomicmix analyzers gather cross-package facts and under-report
// on partial loads.
//
// Exit codes: 0 no findings, 1 findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("tfsnvet", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of file:line:col lines")
	names := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tfsnvet [-json] [-analyzers a,b,...] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All
	if *names != "" {
		analyzers = nil
		for _, name := range strings.Split(*names, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "tfsnvet: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tfsnvet: %v\n", err)
		return 2
	}

	diags := lint.RunAnalyzers(pkgs, analyzers)
	if *jsonOut {
		type finding struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Message  string `json:"message"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{d.Analyzer, d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "tfsnvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
