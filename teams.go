package signedteams

import (
	"math/rand"

	"repro/internal/skills"
	"repro/internal/team"
)

// Skill-side types.
type (
	// SkillID identifies a skill within a Universe.
	SkillID = skills.SkillID
	// Universe is an immutable, ordered collection of skill names.
	Universe = skills.Universe
	// Assignment maps users to skill sets, with a skill→holders
	// inverted index.
	Assignment = skills.Assignment
	// Task is the set of skills a job requires.
	Task = skills.Task
	// ZipfConfig controls the synthetic Zipf skill generator the
	// paper uses for Wikipedia.
	ZipfConfig = skills.ZipfConfig
)

// NewUniverse builds a skill universe from distinct names.
func NewUniverse(names []string) (*Universe, error) { return skills.NewUniverse(names) }

// GenerateUniverse returns a universe of n synthetic skill names.
func GenerateUniverse(n int) *Universe { return skills.GenerateUniverse(n) }

// NewAssignment returns an empty user→skills assignment.
func NewAssignment(u *Universe, numUsers int) *Assignment { return skills.NewAssignment(u, numUsers) }

// NewTask canonicalises a list of skill ids into a Task.
func NewTask(ids ...SkillID) Task { return skills.NewTask(ids...) }

// RandomTask samples a task of k distinct skills that have at least
// one holder, as the paper's task generator does.
func RandomTask(rng *rand.Rand, assign *Assignment, k int) (Task, error) {
	return skills.RandomTask(rng, assign, k)
}

// Team formation types.
type (
	// Team is a formed team: members, diameter cost, seed telemetry.
	Team = team.Team
	// FormOptions selects Algorithm 2's skill and user policies.
	FormOptions = team.Options
	// SkillPolicy picks the next uncovered skill.
	SkillPolicy = team.SkillPolicy
	// UserPolicy picks the compatible holder to add.
	UserPolicy = team.UserPolicy
	// ExactOptions bounds the exhaustive optimal solver.
	ExactOptions = team.ExactOptions
)

// Skill selection policies.
const (
	// RarestFirst satisfies the skill with the fewest holders first.
	RarestFirst = team.RarestFirst
	// LeastCompatibleFirst satisfies the skill with the lowest
	// compatibility degree first (the paper's best policy).
	LeastCompatibleFirst = team.LeastCompatibleFirst
)

// User selection policies.
const (
	// MinDistance adds the candidate closest to the team (LCMD).
	MinDistance = team.MinDistance
	// MostCompatible adds the candidate compatible with the most
	// users in the task's pool (LCMC).
	MostCompatible = team.MostCompatible
	// RandomUser adds a compatible candidate uniformly at random
	// (the RANDOM baseline; requires FormOptions.Rng).
	RandomUser = team.RandomUser
)

// ErrNoTeam reports that no compatible covering team was found; test
// with errors.Is.
var ErrNoTeam = team.ErrNoTeam

// Reusable solver types. A TeamSolver compiles the per-task setup of
// Algorithm 2 (policy ranking, seed list, candidate-pool degrees) into
// a TeamPlan once and reuses per-worker scratch across solves, so
// repeated queries over one relation — the serving workload — skip the
// per-call setup FormTeam pays, batches run across a worker pool, and
// warm plan solves on packed engines are allocation-free when the
// solver is single-worker. With TeamSolverOptions.PlanCache set, the
// solver additionally keeps an LRU of compiled plans keyed by the
// canonical task and the options fingerprint, so repeated tasks skip
// plan compilation across requests — warm cache-hit solves through
// TeamSolver.FormInto allocate nothing on packed engines, and
// TeamSolver.PlanCacheStats reports hits, misses and evictions.
type (
	// TeamSolver answers repeated team formation queries over one
	// (relation, assignment) pair; safe for concurrent use.
	TeamSolver = team.Solver
	// TeamSolverOptions configures NewTeamSolver: the worker count and
	// the PlanCache bound for cross-request plan reuse.
	TeamSolverOptions = team.SolverOptions
	// TeamPlan is a compiled task query: build once with
	// TeamSolver.Plan, solve repeatedly with Form/FormInto/FormTopK.
	TeamPlan = team.TaskPlan
	// PlanCacheStats is a snapshot of a TeamSolver's plan-cache
	// counters (hits, misses, evictions, size, capacity).
	PlanCacheStats = team.PlanCacheStats
)

// NewTeamSolver builds a reusable team-formation solver over rel and
// assign. Results are identical to FormTeam for every policy
// combination and engine, at every worker count — with or without the
// plan cache.
func NewTeamSolver(rel Relation, assign *Assignment, opts TeamSolverOptions) *TeamSolver {
	return team.NewSolver(rel, assign, opts)
}

// FormTeam runs the paper's Algorithm 2: greedy team formation under
// a compatibility relation. For repeated queries against the same
// relation, build a NewTeamSolver once instead.
func FormTeam(rel Relation, assign *Assignment, task Task, opts FormOptions) (*Team, error) {
	return team.Form(rel, assign, task, opts)
}

// ExactTeam finds a minimum-cost compatible team by exhaustive search
// (exponential; small instances only).
func ExactTeam(rel Relation, assign *Assignment, task Task, opts ExactOptions) (*Team, error) {
	return team.Exact(rel, assign, task, opts)
}

// RarestFirstUnsigned is the unsigned team formation baseline of
// Lappas et al. (KDD 2009), used by the paper's Table 3 on the
// IgnoreSigns and DeleteNegative projections of a signed graph.
func RarestFirstUnsigned(g *Graph, assign *Assignment, task Task) (*Team, error) {
	return team.RarestFirstUnsigned(g, assign, task)
}

// TeamCompatible reports whether every member pair is compatible
// under rel.
func TeamCompatible(rel Relation, members []NodeID) (bool, error) {
	return team.Compatible(rel, members)
}

// TeamCost returns the team diameter (max pairwise relation-distance).
func TeamCost(rel Relation, members []NodeID) (int32, error) {
	return team.Cost(rel, members)
}
